// Job-stream bench: the executor as a concurrent job service.
//
// Submits --jobs=N independent synthetic-DAG jobs to ONE executor (shared
// workers, shared learned PTT) and reports per-job latency percentiles
// (p50/p95/p99) per Table-1 policy, under any --scenario= from the catalog.
// This is the job-stream regime the related scheduling literature evaluates
// (many applications sharing a runtime).
//
// Two driving modes:
//   open loop (default; --arrival=poisson:<rate>|fixed:<gap>, default
//     poisson at ~80% of the measured clean-run service rate):
//     arrivals follow the process regardless of completions. On the sim
//     backend the whole arrival trace is submitted up-front as virtual-time
//     offsets and the stream replays bit-identically from the seed; on rt
//     the driver paces submissions in wall time.
//   closed loop (--inflight=K): K jobs are kept in flight; each completion
//     triggers the next submission — the classic throughput-oriented
//     driver.
//
// Multi-tenant regime (--tenants=N, the scheduler-as-a-service driver):
// jobs are split across N weighted sessions (--weights=, deterministic
// smooth weighted round-robin assignment so every tenant's arrival share
// matches its entitlement), released by the service layer's deficit-
// round-robin scheduler under --tenant-inflight/--service-inflight bounds.
// Reported per tenant: sojourn (admission -> completion, i.e. DRR queueing
// + makespan) p50/p95/p99 and the released-task share over the contended
// window (up to the earliest tenant's last release — beyond it that tenant
// has no backlog and shares are arrival-limited, not scheduler-limited).
// Fairness = Jain index over weight-normalised shares + max relative share
// error; both are gated against a checked-in baseline (--baseline=PATH,
// exit 1 on a >--tolerance regression; --update-baseline rewrites it).
//
// Per-job latency = release -> completion (RunResult::makespan_s): on the
// open loop it includes queueing behind earlier jobs, which is the point.

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "../bench/support.hpp"
#include "util/time.hpp"

using namespace das;
using namespace das::bench;

namespace {

struct StreamResult {
  std::vector<RunResult> jobs;
  /// The arrival process actually driven (the default open loop derives its
  /// Poisson rate from a calibration run, so the flag alone can't tell).
  cli::Arrival effective{};
  std::vector<TenantCounters> counters;  ///< per tenant (multi-tenant runs)
};

/// One gated fairness metric: "<label>/jain" wants HIGHER (floor gate),
/// "<label>/share_err" wants LOWER (ceiling gate).
struct FairnessCell {
  std::string label;
  double value = 0.0;
  bool higher_is_better = false;
};

// One job = one small fork-join synthetic DAG; jobs differ only in their
// arrival instants, so per-job latency differences isolate queueing and
// scheduling, not workload variance.
workloads::SyntheticDagSpec job_spec(const Bench& b) {
  workloads::SyntheticDagSpec spec =
      workloads::paper_matmul_spec(b.ids.matmul, /*parallelism=*/4, b.scale);
  // Keep a single job well under a second of virtual time so an 8..64-job
  // stream stays interactive on both backends.
  spec.total_tasks = std::max(20, spec.total_tasks / 8);
  return spec;
}

cli::Arrival effective_arrival(const Bench& b, double service_estimate_s) {
  if (b.arrival) return *b.arrival;
  // Default: Poisson at ~80% utilisation of the measured service rate.
  cli::Arrival a;
  a.kind = cli::Arrival::Kind::kPoisson;
  a.rate_hz = 0.8 / std::max(service_estimate_s, 1e-9);
  return a;
}

/// Inter-arrival gaps for the open loop, drawn once per policy from the
/// bench seed so sim reruns replay the identical trace.
std::vector<double> make_gaps(const Bench& b, const cli::Arrival& a) {
  Xoshiro256 rng(b.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(b.jobs));
  for (int j = 0; j < b.jobs; ++j) {
    if (a.kind == cli::Arrival::Kind::kFixed) {
      gaps.push_back(a.gap_s);
    } else {
      // Exponential inter-arrival via inverse CDF on the deterministic RNG.
      const double u = rng.uniform();
      gaps.push_back(-std::log(1.0 - u) / a.rate_hz);
    }
  }
  return gaps;
}

/// Deterministic smooth weighted round-robin: job j goes to the tenant with
/// the highest accumulated credit, which then pays the total weight back.
/// Every tenant's arrival share converges on weight/Σweights, so under
/// saturation each stays backlogged through the contended window and the
/// measured release shares isolate the DRR scheduler, not the arrival mix.
std::vector<int> make_tenant_assignment(const Bench& b) {
  std::vector<int> owner(static_cast<std::size_t>(b.jobs), 0);
  if (b.tenants <= 1) return owner;
  double total = 0.0;
  for (int t = 0; t < b.tenants; ++t) total += b.tenant_weight(t);
  std::vector<double> credit(static_cast<std::size_t>(b.tenants), 0.0);
  for (int j = 0; j < b.jobs; ++j) {
    int best = 0;
    for (int t = 0; t < b.tenants; ++t) {
      credit[static_cast<std::size_t>(t)] += b.tenant_weight(t);
      if (credit[static_cast<std::size_t>(t)] >
          credit[static_cast<std::size_t>(best)])
        best = t;
    }
    credit[static_cast<std::size_t>(best)] -= total;
    owner[static_cast<std::size_t>(j)] = best;
  }
  return owner;
}

StreamResult run_stream(Bench& b, Policy policy,
                        const SpeedScenario* scenario) {
  ExecutorConfig cfg = b.make_config();
  cfg.service.max_service_inflight = b.service_inflight;
  auto exec = b.make(policy, scenario, cfg);
  const workloads::SyntheticDagSpec spec = job_spec(b);

  // Weighted sessions for the multi-tenant regime. kReject + a 0 budget
  // means nothing is refused by default; --queue-tasks arms admission.
  std::vector<std::unique_ptr<Session>> sessions;
  for (int t = 0; t < b.tenants && b.tenants > 1; ++t) {
    TenantConfig tc;
    tc.name = "tenant" + std::to_string(t);
    tc.weight = b.tenant_weight(t);
    tc.max_in_flight = b.tenant_inflight;
    tc.max_queued_tasks = b.queue_tasks;
    tc.overload = Overload::kReject;
    sessions.push_back(exec->open_session(tc));
  }
  const std::vector<int> owner = make_tenant_assignment(b);
  const auto submit = [&](const Dag& dag, int j, const SubmitOptions& opts) {
    if (sessions.empty()) return exec->submit(dag, opts);
    const auto t = static_cast<std::size_t>(owner[static_cast<std::size_t>(j)]);
    return sessions[t]->submit(dag, opts);
  };

  // Calibration run (not measured): trains the PTT a little and yields the
  // service-time estimate the default arrival rate derives from.
  const Dag warmup = workloads::make_synthetic_dag(spec);
  const double service_estimate_s = exec->run(warmup).makespan_s;
  exec->reset_stats();  // the measured stream starts from zeroed counters

  // DAGs must outlive their jobs: build the whole stream up-front.
  std::vector<Dag> dags;
  dags.reserve(static_cast<std::size_t>(b.jobs));
  for (int j = 0; j < b.jobs; ++j)
    dags.push_back(workloads::make_synthetic_dag(spec));

  const cli::Arrival eff = effective_arrival(b, service_estimate_s);
  StreamResult out;
  out.effective = eff;
  if (b.inflight > 0) {
    // Closed loop: keep K jobs in flight; completions trigger submissions.
    std::vector<JobId> window;
    int next = 0;
    while (next < b.jobs && static_cast<int>(window.size()) < b.inflight) {
      window.push_back(submit(dags[static_cast<std::size_t>(next)], next, {}));
      ++next;
    }
    std::size_t head = 0;
    while (head < window.size()) {
      out.jobs.push_back(exec->wait(window[head++]));
      if (next < b.jobs) {
        window.push_back(
            submit(dags[static_cast<std::size_t>(next)], next, {}));
        ++next;
      }
    }
  } else {
    const std::vector<double> gaps = make_gaps(b, eff);
    if (b.backend == Backend::kSim) {
      // Open loop on the DES: the full arrival trace goes in as virtual-time
      // offsets; the interleave is a pure function of (seed, trace).
      double offset = 0.0;
      std::vector<JobId> ids;
      for (int j = 0; j < b.jobs; ++j) {
        offset += gaps[static_cast<std::size_t>(j)];
        SubmitOptions opts;
        opts.arrival_offset_s = offset;
        ids.push_back(submit(dags[static_cast<std::size_t>(j)], j, opts));
      }
      for (JobId id : ids) out.jobs.push_back(exec->wait(id));
    } else {
      // Open loop on the real runtime: pace arrivals in wall time (sleep,
      // not busy-wait — the submitter must not steal cycles from workers).
      std::vector<JobId> ids;
      for (int j = 0; j < b.jobs; ++j) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            s_to_ns(gaps[static_cast<std::size_t>(j)])));
        ids.push_back(submit(dags[static_cast<std::size_t>(j)], j, {}));
      }
      for (JobId id : ids) out.jobs.push_back(exec->wait(id));
    }
  }
  for (const auto& s : sessions) out.counters.push_back(s->counters());
  return out;
}

/// Per-tenant aggregation of one multi-tenant stream.
struct TenantAgg {
  std::string name;
  double weight = 1.0;
  std::vector<double> sojourn_s;  ///< admission -> completion, non-rejected
  std::int64_t jobs = 0;
  std::int64_t rejected = 0;
  std::int64_t window_tasks = 0;  ///< tasks released inside the window
  double last_release_s = 0.0;
  double share = 0.0;      ///< window_tasks / Σ window_tasks
  double want = 0.0;       ///< weight / Σ weights
  double share_err = 0.0;  ///< |share - want| / want
};

struct Fairness {
  std::vector<TenantAgg> tenants;
  double jain = 0.0;
  double max_share_err = 0.0;
  double window_s = 0.0;
};

Fairness fairness_of(const Bench& b, const StreamResult& r) {
  Fairness f;
  f.tenants.resize(static_cast<std::size_t>(b.tenants));
  double total_weight = 0.0;
  for (int t = 0; t < b.tenants; ++t) total_weight += b.tenant_weight(t);
  for (int t = 0; t < b.tenants; ++t) {
    TenantAgg& a = f.tenants[static_cast<std::size_t>(t)];
    a.name = "tenant" + std::to_string(t);
    a.weight = b.tenant_weight(t);
    a.want = a.weight / total_weight;
  }
  const auto agg_of = [&](const RunResult& j) -> TenantAgg* {
    for (TenantAgg& a : f.tenants)
      if (a.name == j.tenant) return &a;
    return nullptr;
  };
  // The contended window: [0, earliest tenant's last release]. Past it that
  // tenant has nothing queued, so capacity shares stop being the
  // scheduler's decision.
  for (const RunResult& j : r.jobs) {
    TenantAgg* a = agg_of(j);
    if (a == nullptr) continue;
    ++a->jobs;
    if (!j.ok()) {
      ++a->rejected;
      continue;
    }
    a->sojourn_s.push_back(j.queue_s + j.makespan_s);
    a->last_release_s = std::max(a->last_release_s, j.arrival_s + j.queue_s);
  }
  f.window_s = f.tenants.front().last_release_s;
  for (const TenantAgg& a : f.tenants)
    f.window_s = std::min(f.window_s, a.last_release_s);
  for (const RunResult& j : r.jobs) {
    if (!j.ok()) continue;
    TenantAgg* a = agg_of(j);
    if (a != nullptr && j.arrival_s + j.queue_s <= f.window_s)
      a->window_tasks += j.tasks;
  }
  std::int64_t window_total = 0;
  for (const TenantAgg& a : f.tenants) window_total += a.window_tasks;
  double sum_x = 0.0, sum_x2 = 0.0;
  for (TenantAgg& a : f.tenants) {
    a.share = window_total > 0 ? static_cast<double>(a.window_tasks) /
                                     static_cast<double>(window_total)
                               : 0.0;
    a.share_err = std::abs(a.share - a.want) / a.want;
    f.max_share_err = std::max(f.max_share_err, a.share_err);
    const double x = static_cast<double>(a.window_tasks) / a.weight;
    sum_x += x;
    sum_x2 += x * x;
  }
  f.jain = sum_x2 > 0.0 ? (sum_x * sum_x) / (static_cast<double>(b.tenants) *
                                             sum_x2)
                        : 0.0;
  return f;
}

json::Value fairness_json(const Fairness& f,
                          const std::vector<TenantCounters>& counters) {
  json::Value tenants = json::Value::array();
  for (std::size_t t = 0; t < f.tenants.size(); ++t) {
    const TenantAgg& a = f.tenants[t];
    json::Value rec = json::Value::object();
    rec.set("tenant", a.name);
    rec.set("weight", a.weight);
    rec.set("jobs", a.jobs);
    rec.set("rejected", a.rejected);
    json::Value lat = json::Value::object();
    lat.set("p50", percentile(a.sojourn_s, 0.50));
    lat.set("p95", percentile(a.sojourn_s, 0.95));
    lat.set("p99", percentile(a.sojourn_s, 0.99));
    rec.set("sojourn_s", std::move(lat));
    rec.set("window_tasks", a.window_tasks);
    rec.set("share", a.share);
    rec.set("want", a.want);
    rec.set("share_err", a.share_err);
    if (t < counters.size()) {
      const TenantCounters& c = counters[t];
      rec.set("submitted", c.submitted);
      rec.set("released", c.released);
      rec.set("completed", c.completed);
    }
    tenants.push_back(std::move(rec));
  }
  json::Value fair = json::Value::object();
  fair.set("jain", f.jain);
  fair.set("max_share_err", f.max_share_err);
  fair.set("window_s", f.window_s);
  json::Value extra = json::Value::object();
  extra.set("tenants", std::move(tenants));
  extra.set("fairness", std::move(fair));
  return extra;
}

}  // namespace

int main(int argc, char** argv) {
  Bench b(argc, argv, "job_stream", /*job_stream_flags=*/true);
  if (!b.scale_explicit && b.backend == Backend::kRt) b.scale = 0.01;
  if (!b.jobs_explicit) b.jobs = b.tenants > 1 ? 32 * b.tenants : 16;
  print_backend(b);
  std::cout << "jobs " << b.jobs
            << (b.inflight > 0
                    ? "  closed loop, inflight " + std::to_string(b.inflight)
                    : std::string("  open loop"));
  if (b.tenants > 1) {
    std::cout << "  tenants " << b.tenants << " (weights";
    for (int t = 0; t < b.tenants; ++t)
      std::cout << " " << fmt_double(b.tenant_weight(t), 2);
    std::cout << ", tenant-inflight " << b.tenant_inflight
              << ", service-inflight " << b.service_inflight << ")";
  }
  std::cout << "\n";

  const SpeedScenario scenario =
      b.make_scenario(b.topo, [](SpeedScenario&) { /* clean by default */ });

  print_title("Job stream: per-job latency [s] by scheduler");
  TextTable t({"scheduler", "p50", "p95", "p99", "mean", "max", "stream [s]"});
  TextTable ft({"scheduler", "tenant", "w", "jobs", "rej", "p50", "p95", "p99",
                "share", "want", "err"});
  std::vector<FairnessCell> cells;
  bool any_tenant_rows = false;
  for (Policy p : b.policies()) {
    const StreamResult r = run_stream(b, p, &scenario);
    std::vector<double> lat;
    double sum = 0.0, max = 0.0, last_finish = 0.0;
    for (const RunResult& j : r.jobs) {
      if (!j.ok()) continue;
      lat.push_back(j.makespan_s);
      sum += j.makespan_s;
      max = std::max(max, j.makespan_s);
      last_finish = std::max(last_finish, j.arrival_s + j.makespan_s);
    }
    const double first_arrival = r.jobs.front().arrival_s;
    t.row()
        .add(policy_name(p))
        .add(percentile(lat, 0.50), 4)
        .add(percentile(lat, 0.95), 4)
        .add(percentile(lat, 0.99), 4)
        .add(sum / static_cast<double>(lat.size()), 4)
        .add(max, 4)
        .add(last_finish - first_arrival, 4);
    json::Value extra = json::Value::object();
    if (b.tenants > 1) {
      const Fairness f = fairness_of(b, r);
      any_tenant_rows = true;
      for (const TenantAgg& a : f.tenants)
        ft.row()
            .add(policy_name(p))
            .add(a.name)
            .add(a.weight, 1)
            .add(static_cast<double>(a.jobs), 0)
            .add(static_cast<double>(a.rejected), 0)
            .add(percentile(a.sojourn_s, 0.50), 4)
            .add(percentile(a.sojourn_s, 0.95), 4)
            .add(percentile(a.sojourn_s, 0.99), 4)
            .add(a.share, 3)
            .add(a.want, 3)
            .add(a.share_err, 3);
      std::cout << policy_name(p) << ": jain "
                << fmt_double(f.jain, 4) << ", max share err "
                << fmt_double(f.max_share_err, 4) << " over window "
                << fmt_double(f.window_s, 4) << " s\n";
      const std::string label = std::string("js/") + policy_name(p) + "/" +
                                b.scenario_name() +
                                "/t=" + std::to_string(b.tenants) +
                                "/jobs=" + std::to_string(b.jobs);
      cells.push_back(FairnessCell{label + "/jain", f.jain, true});
      cells.push_back(FairnessCell{label + "/share_err", f.max_share_err,
                                   false});
      extra = fairness_json(f, r.counters);
    }
    b.report_job_stream("job stream", r.jobs, r.effective, std::move(extra));
  }
  t.print(std::cout);
  if (any_tenant_rows) {
    print_title("Multi-tenant fairness: sojourn [s] and released-task shares");
    ft.print(std::cout);
  }

  // --- fairness baseline gate ----------------------------------------------
  if (b.update_baseline) {
    json::Value cells_json = json::Value::object();
    try {
      const json::Value old = json::parse_file(b.baseline_path);
      if (const json::Value* oc = old.find("cells"); oc && oc->is_object())
        for (const auto& [label, v] : oc->members()) cells_json.set(label, v);
    } catch (const json::Error&) {
      // No (readable) previous baseline: start fresh.
    }
    for (const FairnessCell& c : cells) cells_json.set(c.label, c.value);
    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", "job_stream_baseline");
    doc.set("note",
            "multi-tenant fairness per cell: */jain must stay within "
            "--tolerance below its reference (floor), */share_err within "
            "--tolerance above (ceiling, +0.02 absolute slack). Sim cells "
            "are deterministic from the seed; refresh with "
            "--update-baseline after intentional scheduler changes.");
    doc.set("cells", std::move(cells_json));
    std::ofstream out(b.baseline_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write baseline to '" << b.baseline_path
                << "'\n";
      return 2;
    }
    std::cout << "updated baseline " << b.baseline_path << "\n";
  } else if (!b.baseline_path.empty() && !cells.empty()) {
    int regressions = 0;
    try {
      const json::Value doc = json::parse_file(b.baseline_path);
      const json::Value* cells_json = doc.find("cells");
      if (cells_json == nullptr || !cells_json->is_object())
        throw json::Error(b.baseline_path + ": missing 'cells' object");
      for (const FairnessCell& c : cells) {
        const json::Value* ref = cells_json->find(c.label);
        if (ref == nullptr) {
          std::cout << "baseline: no reference for cell '" << c.label
                    << "' (skipped)\n";
          continue;
        }
        const bool bad =
            c.higher_is_better
                ? c.value < ref->as_number() * (1.0 - b.tolerance)
                : c.value > ref->as_number() * (1.0 + b.tolerance) + 0.02;
        if (bad) {
          std::cerr << "REGRESSION " << c.label << ": "
                    << fmt_double(c.value, 4)
                    << (c.higher_is_better ? " < floor from baseline "
                                           : " > ceiling from baseline ")
                    << fmt_double(ref->as_number(), 4) << " (tolerance "
                    << b.tolerance * 100 << "%)\n";
          ++regressions;
        } else {
          std::cout << "ok " << c.label << ": " << fmt_double(c.value, 4)
                    << " (baseline " << fmt_double(ref->as_number(), 4)
                    << ")\n";
        }
      }
    } catch (const json::Error& e) {
      std::cerr << "error: cannot read baseline: " << e.what() << "\n";
      return 2;
    }
    if (regressions > 0) {
      std::cerr << regressions << " fairness cell(s) regressed beyond "
                << b.tolerance * 100
                << "% — investigate or refresh with --update-baseline\n";
      const int rc = b.finish();
      return rc != 0 ? rc : 1;
    }
  }
  return b.finish();
}
