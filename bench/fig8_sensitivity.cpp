// Reproduces the paper's Figure 8: sensitivity of throughput to the PTT's
// weighted-update ratio (new-sample weight 1/5 .. 5/5) across MatMul tile
// sizes 32 / 64 / 80 / 96, under the core-0 co-runner, scheduler DAM-C.
// Runs through the das::Executor facade (--backend=sim|rt).
//
// Paper reference points: the ratio only matters for tile 32 (short tasks,
// noisy measurements; strongest smoothing 1/5 wins by ~36% over the worst);
// for larger tiles the curves flatten. Tile 32 fits both L1 caches, 64/80
// fit only the Denver L1, 96 spills to L2 — visible as the throughput drop
// across tile sizes.

#include <iostream>

#include "../bench/support.hpp"

using namespace das;
using namespace das::bench;

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig8_sensitivity");
  print_backend(b);
  const SpeedScenario scenario = b.make_scenario(
      b.topo, [](SpeedScenario& s) { s.add_cpu_corunner(0); });

  print_title("Fig. 8: MatMul throughput [tasks/s] vs tile size and PTT ratio "
              "(DAM-C, co-runner on core 0)");
  TextTable t({"tile", "1/5", "2/5", "3/5", "4/5", "5/5", "worst/best drop"});
  for (int tile : {32, 64, 80, 96}) {
    t.row().add(std::int64_t{tile});
    double best = 0.0, worst = 1e300;
    for (int num = 1; num <= 5; ++num) {
      // Parallelism 2: the release-bound regime where each PTT decision
      // gates a layer, so decision quality (and thus the smoothing ratio)
      // is visible in throughput.
      workloads::SyntheticDagSpec spec =
          workloads::paper_matmul_spec(b.ids.matmul, 2, b.scale, tile);
      ExecutorConfig cfg = b.make_config();
      cfg.ptt_ratio = UpdateRatio{num, 5};
      const double tp =
          b.throughput("tile " + std::to_string(tile) + " ratio " +
                           std::to_string(num) + "/5",
                       Policy::kDamC, spec, &scenario, cfg)
              .tasks_per_s;
      best = std::max(best, tp);
      worst = std::min(worst, tp);
      t.add(tp, 0);
    }
    t.add(fmt_percent(1.0 - worst / best, 1));
  }
  t.print(std::cout);
  return b.finish();
}
