// Reproduces the paper's Figure 4: throughput of the seven schedulers under
// a co-running application pinned to core 0, for the MatMul (CPU
// interference), Copy (memory interference) and Stencil (CPU interference)
// synthetic DAGs, DAG parallelism 2..6, on the TX2 model.
//
// Runs through the das::Executor facade: --backend=rt executes the same
// sweep on the real-thread runtime (use --scale to keep wall time sane).
//
// Paper reference points (shape, not absolute):
//   - DAM-C up to 3.5x RWS for MatMul, and up to +90%/+85% vs FA/FAM-C;
//   - RWS/FA/FAM-C throughput roughly linear in DAG parallelism;
//   - DA/DAM-C/DAM-P near peak already at parallelism 2.

#include <iostream>
#include <map>

#include "../bench/support.hpp"

using namespace das;
using namespace das::bench;

namespace {

void run_kernel(Bench& b, const std::string& name,
                const workloads::SyntheticDagSpec& base, bool memory_corunner) {
  const SpeedScenario scenario =
      b.make_scenario(b.topo, [&](SpeedScenario& s) {
        if (memory_corunner) {
          s.add_mem_corunner(0);
        } else {
          s.add_cpu_corunner(0);
        }
      });

  const std::vector<Policy> policies = b.policies();
  const std::string condition =
      b.scenario_override
          ? "scenario " + b.scenario_name()
          : std::string("co-runner on core 0 (") +
                (memory_corunner ? "memory" : "CPU") + " interference)";
  print_title("Fig. 4: " + name + " — " + condition + ", tasks/s");
  TextTable t(policy_header("parallelism", policies));
  std::map<Policy, std::map<int, double>> tp;
  for (int P = 2; P <= 6; ++P) {
    workloads::SyntheticDagSpec spec = base;
    spec.parallelism = P;
    t.row().add(std::int64_t{P});
    for (Policy p : policies) {
      tp[p][P] = b.throughput(name + " P=" + std::to_string(P), p, spec,
                              &scenario)
                     .tasks_per_s;
      t.add(tp[p][P], 0);
    }
  }
  t.print(std::cout);

  // Headline ratios the paper quotes for MatMul (only meaningful when the
  // policies they compare are in this run's set).
  if (tp.count(Policy::kDamC) && tp.count(Policy::kRws) &&
      tp.count(Policy::kFa) && tp.count(Policy::kFamC)) {
    double best_vs_rws = 0.0, best_vs_fa = 0.0, best_vs_famc = 0.0;
    for (int P = 2; P <= 6; ++P) {
      best_vs_rws = std::max(best_vs_rws, tp[Policy::kDamC][P] / tp[Policy::kRws][P]);
      best_vs_fa = std::max(best_vs_fa, tp[Policy::kDamC][P] / tp[Policy::kFa][P]);
      best_vs_famc = std::max(best_vs_famc, tp[Policy::kDamC][P] / tp[Policy::kFamC][P]);
    }
    std::cout << "DAM-C max speedup vs RWS: " << fmt_double(best_vs_rws, 2)
              << "x   vs FA: +" << fmt_percent(best_vs_fa - 1.0, 0)
              << "   vs FAM-C: +" << fmt_percent(best_vs_famc - 1.0, 0) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig4_interference");
  print_backend(b);
  // Paper-scale DAGs: 32000 MatMul / 10000 Copy / 20000 Stencil tasks.
  run_kernel(b, "Matrix Multiplication",
             workloads::paper_matmul_spec(b.ids.matmul, 2, b.scale),
             /*memory=*/false);
  run_kernel(b, "Copy", workloads::paper_copy_spec(b.ids.copy, 2, b.scale),
             /*memory=*/true);
  run_kernel(b, "Stencil",
             workloads::paper_stencil_spec(b.ids.stencil, 2, b.scale),
             /*memory=*/false);
  return b.finish();
}
