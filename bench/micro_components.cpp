// Micro-benchmarks (google-benchmark) for the runtime's hot components.
//
// The headline check is the paper's §4.1.1 claim that a GLOBAL search of the
// whole PTT costs "in the order of one microsecond" on the TX2's 10 places —
// BM_PolicyGlobalSearch/10 measures exactly that decision; the larger
// instances show how the cost scales with the number of places (the paper's
// stated scalability concern).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/cost_expr.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "core/two_level_search.hpp"
#include "kernels/cost_models.hpp"
#include "kernels/registry.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "rt/wsq.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace das;

Topology topology_with_places(int places) {
  switch (places) {
    case 10: return Topology::tx2();          // 10 places (paper platform)
    case 36: return Topology::haswell16();    // 2 x 18 places... (see below)
    default: return Topology::haswell_cluster(4);  // 144 places
  }
}

void BM_PttLookup(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  Ptt ptt(topo);
  for (int pid = 0; pid < topo.num_places(); ++pid) ptt.update(pid, 1e-3);
  int pid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptt.value(pid));
    pid = (pid + 1) % topo.num_places();
  }
}
BENCHMARK(BM_PttLookup);

void BM_PttUpdate(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  Ptt ptt(topo);
  for (auto _ : state) {
    ptt.update(3, 1e-3);
  }
}
BENCHMARK(BM_PttUpdate);

void BM_PolicyGlobalSearch(benchmark::State& state) {
  const Topology topo = topology_with_places(static_cast<int>(state.range(0)));
  PttStore store(topo, 1);
  Xoshiro256 rng(1);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    store.table(0).update(pid, 1e-3 * (1.0 + rng.uniform()));
  PolicyEngine eng(Policy::kDamC, topo, &store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.on_ready(0, Priority::kHigh, 0));
  }
  state.counters["places"] = topo.num_places();
}
BENCHMARK(BM_PolicyGlobalSearch)->Arg(10)->Arg(36)->Arg(144);

// Future-work prototype (paper §4.1.1 scalability concern): the two-level
// cluster-cached search vs the flat scan above, on the 144-place topology,
// with updates localised to one cluster between decisions — the cache skips
// the 7 clean clusters.
void BM_TwoLevelSearchLocalisedUpdates(benchmark::State& state) {
  const Topology topo = Topology::haswell_cluster(4);
  Ptt ptt(topo);
  Xoshiro256 rng(2);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    ptt.update(pid, 1e-3 * (1.0 + rng.uniform()));
  TwoLevelSearch search(topo);
  const ExecutionPlace touched{0, 1};
  for (auto _ : state) {
    ptt.update(touched, 1e-3);
    search.invalidate(touched);
    benchmark::DoNotOptimize(search.find_min(ptt, PolicyEngine::Objective::kCost));
  }
  state.counters["places"] = topo.num_places();
}
BENCHMARK(BM_TwoLevelSearchLocalisedUpdates);

void BM_PolicyLocalSearch(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  PttStore store(topo, 1);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    store.table(0).update(pid, 1e-3 + pid * 1e-5);
  PolicyEngine eng(Policy::kDamC, topo, &store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.on_execute(0, Priority::kLow, 3));
  }
}
BENCHMARK(BM_PolicyLocalSearch);

// ---- static-dispatch cost cells ------------------------------------------
// Price of each dispatch layer the fused engine loops eliminate: the
// dynamic policy entry points (one switch over the static instantiations)
// vs the inlined *_static templates, and the std::function cost-model call
// vs the inline closed-form evaluator vs the fixed-cost load. The engine
// benches (sim_throughput, overhead_scaling) measure the end-to-end effect;
// these isolate the per-call deltas.

void BM_DispatchOnReadyDynamic(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  PttStore store(topo, 1);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    store.table(0).update(pid, 1e-3 + pid * 1e-5);
  PolicyEngine eng(Policy::kDamC, topo, &store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.on_ready(0, Priority::kLow, 3));
  }
}
BENCHMARK(BM_DispatchOnReadyDynamic);

void BM_DispatchOnReadyFused(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  PttStore store(topo, 1);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    store.table(0).update(pid, 1e-3 + pid * 1e-5);
  PolicyEngine eng(Policy::kDamC, topo, &store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eng.on_ready_static<Policy::kDamC>(0, Priority::kLow, 3));
  }
}
BENCHMARK(BM_DispatchOnReadyFused);

void BM_DispatchOnExecuteDynamic(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  PttStore store(topo, 1);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    store.table(0).update(pid, 1e-3 + pid * 1e-5);
  PolicyEngine eng(Policy::kDamC, topo, &store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.on_execute(0, Priority::kLow, 3));
  }
}
BENCHMARK(BM_DispatchOnExecuteDynamic);

void BM_DispatchOnExecuteFused(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  PttStore store(topo, 1);
  for (int pid = 0; pid < topo.num_places(); ++pid)
    store.table(0).update(pid, 1e-3 + pid * 1e-5);
  PolicyEngine eng(Policy::kDamC, topo, &store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eng.on_execute_static<Policy::kDamC>(0, Priority::kLow, 3));
  }
}
BENCHMARK(BM_DispatchOnExecuteFused);

void BM_DispatchCostEvalErased(benchmark::State& state) {
  // The pre-fusion hot path: every cost evaluation goes through the
  // type-erased CostFn (a std::function wrapping CostExprFn).
  const Topology topo = Topology::tx2();
  TaskTypeRegistry reg;
  const kernels::PaperKernelIds ids = kernels::register_paper_kernels(reg);
  const TaskTypeInfo& info = reg.info(ids.matmul);
  TaskParams p;
  p.p0 = 64.0;
  CostQuery q;
  q.place = ExecutionPlace{0, 1};
  q.cluster = &topo.cluster_of_core(0);
  q.speed = 1.0;
  q.bw_share = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(info.cost(p, q));
  }
}
BENCHMARK(BM_DispatchCostEvalErased);

void BM_DispatchCostEvalExpr(benchmark::State& state) {
  // The fused loops' evaluation: the identical arithmetic, inlined.
  const Topology topo = Topology::tx2();
  TaskTypeRegistry reg;
  const kernels::PaperKernelIds ids = kernels::register_paper_kernels(reg);
  const TaskTypeInfo& info = reg.info(ids.matmul);
  TaskParams p;
  p.p0 = 64.0;
  CostQuery q;
  q.place = ExecutionPlace{0, 1};
  q.cluster = &topo.cluster_of_core(0);
  q.speed = 1.0;
  q.bw_share = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost_expr_eval(info.expr, p, q));
  }
}
BENCHMARK(BM_DispatchCostEvalExpr);

void BM_DispatchCostEvalFixed(benchmark::State& state) {
  // The kFixed instantiation's evaluation: one load. The floor the
  // scheduler-overhead benches (grain 0) run on.
  TaskTypeRegistry reg;
  const TaskTypeId fixed =
      reg.register_type("fixed", kernels::fixed_cost(1e-6));
  const TaskTypeInfo& info = reg.info(fixed);
  TaskParams p;
  CostQuery q;
  q.place = ExecutionPlace{0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(info.expr.u.fixed.seconds);
    benchmark::DoNotOptimize(p);
  }
  (void)q;
}
BENCHMARK(BM_DispatchCostEvalFixed);

void BM_WsDequePushPop(benchmark::State& state) {
  rt::WsDeque<int> q;
  int item = 7;
  for (auto _ : state) {
    q.push_bottom(&item);
    benchmark::DoNotOptimize(q.pop_bottom());
  }
}
BENCHMARK(BM_WsDequePushPop);

void BM_WsDequeStealUncontended(benchmark::State& state) {
  rt::WsDeque<int> q;
  std::vector<int> items(1024);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& i : items) q.push_bottom(&i);
    state.ResumeTiming();
    for (std::size_t i = 0; i < items.size(); ++i)
      benchmark::DoNotOptimize(q.steal_top());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(items.size()));
}
BENCHMARK(BM_WsDequeStealUncontended);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue<int> q;
  Xoshiro256 rng(3);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.push(rng.uniform(), i);
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueue);

void BM_SpeedScenarioQuery(benchmark::State& state) {
  const Topology topo = Topology::tx2();
  SpeedScenario sc(topo);
  sc.add_dvfs(DvfsSchedule{.cluster = 0});
  sc.add_cpu_corunner(0);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc.speed(2, t));
    t += 1e-4;
  }
}
BENCHMARK(BM_SpeedScenarioQuery);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): CI drives every bench with the
// same flag set (--backend/--policy/--scenario/--scale/--seed/--json, see
// bench/support.hpp). The micro benches have no engine, so the first five
// are accepted and ignored; --json=PATH maps onto google-benchmark's native
// JSON reporter so the artifact convention (BENCH_*.json) still holds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ignored = false;
    for (const char* prefix : {"--backend=", "--policy=", "--scenario=",
                               "--scale=", "--seed="})
      ignored = ignored || arg.rfind(prefix, 0) == 0;
    if (ignored) continue;
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      // Bare --json defaults to BENCH_<name>.json like the other benches.
      const std::string path =
          arg == "--json" ? "BENCH_micro_components.json" : arg.substr(7);
      storage.push_back("--benchmark_out=" + path);
      storage.push_back("--benchmark_out_format=json");
      continue;
    }
    args.push_back(argv[i]);
  }
  for (std::string& s : storage) args.push_back(s.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
