# Empty dependencies file for fig7_dvfs.
# This may be replaced when dependencies are built.
