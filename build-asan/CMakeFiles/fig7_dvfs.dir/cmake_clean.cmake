file(REMOVE_RECURSE
  "CMakeFiles/fig7_dvfs.dir/bench/fig7_dvfs.cpp.o"
  "CMakeFiles/fig7_dvfs.dir/bench/fig7_dvfs.cpp.o.d"
  "bench/fig7_dvfs"
  "bench/fig7_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
