# Empty dependencies file for overhead_scaling.
# This may be replaced when dependencies are built.
