file(REMOVE_RECURSE
  "CMakeFiles/overhead_scaling.dir/bench/overhead_scaling.cpp.o"
  "CMakeFiles/overhead_scaling.dir/bench/overhead_scaling.cpp.o.d"
  "bench/overhead_scaling"
  "bench/overhead_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
