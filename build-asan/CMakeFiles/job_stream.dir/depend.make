# Empty dependencies file for job_stream.
# This may be replaced when dependencies are built.
