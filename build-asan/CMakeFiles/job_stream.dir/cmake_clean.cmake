file(REMOVE_RECURSE
  "CMakeFiles/job_stream.dir/bench/job_stream.cpp.o"
  "CMakeFiles/job_stream.dir/bench/job_stream.cpp.o.d"
  "bench/job_stream"
  "bench/job_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
