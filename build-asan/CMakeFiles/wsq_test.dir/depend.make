# Empty dependencies file for wsq_test.
# This may be replaced when dependencies are built.
