file(REMOVE_RECURSE
  "CMakeFiles/wsq_test.dir/tests/wsq_test.cpp.o"
  "CMakeFiles/wsq_test.dir/tests/wsq_test.cpp.o.d"
  "wsq_test"
  "wsq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
