# Empty dependencies file for fig10_heat_distributed.
# This may be replaced when dependencies are built.
