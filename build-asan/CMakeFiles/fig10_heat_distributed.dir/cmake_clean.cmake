file(REMOVE_RECURSE
  "CMakeFiles/fig10_heat_distributed.dir/bench/fig10_heat_distributed.cpp.o"
  "CMakeFiles/fig10_heat_distributed.dir/bench/fig10_heat_distributed.cpp.o.d"
  "bench/fig10_heat_distributed"
  "bench/fig10_heat_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_heat_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
