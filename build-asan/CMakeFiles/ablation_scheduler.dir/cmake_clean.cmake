file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheduler.dir/bench/ablation_scheduler.cpp.o"
  "CMakeFiles/ablation_scheduler.dir/bench/ablation_scheduler.cpp.o.d"
  "bench/ablation_scheduler"
  "bench/ablation_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
