file(REMOVE_RECURSE
  "libdas.a"
)
