# Empty dependencies file for das.
# This may be replaced when dependencies are built.
