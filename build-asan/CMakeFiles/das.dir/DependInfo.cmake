
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/criticality.cpp" "CMakeFiles/das.dir/src/core/criticality.cpp.o" "gcc" "CMakeFiles/das.dir/src/core/criticality.cpp.o.d"
  "/root/repo/src/core/dag.cpp" "CMakeFiles/das.dir/src/core/dag.cpp.o" "gcc" "CMakeFiles/das.dir/src/core/dag.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "CMakeFiles/das.dir/src/core/policy.cpp.o" "gcc" "CMakeFiles/das.dir/src/core/policy.cpp.o.d"
  "/root/repo/src/core/ptt.cpp" "CMakeFiles/das.dir/src/core/ptt.cpp.o" "gcc" "CMakeFiles/das.dir/src/core/ptt.cpp.o.d"
  "/root/repo/src/core/task_type.cpp" "CMakeFiles/das.dir/src/core/task_type.cpp.o" "gcc" "CMakeFiles/das.dir/src/core/task_type.cpp.o.d"
  "/root/repo/src/core/two_level_search.cpp" "CMakeFiles/das.dir/src/core/two_level_search.cpp.o" "gcc" "CMakeFiles/das.dir/src/core/two_level_search.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "CMakeFiles/das.dir/src/exec/executor.cpp.o" "gcc" "CMakeFiles/das.dir/src/exec/executor.cpp.o.d"
  "/root/repo/src/kernels/copy.cpp" "CMakeFiles/das.dir/src/kernels/copy.cpp.o" "gcc" "CMakeFiles/das.dir/src/kernels/copy.cpp.o.d"
  "/root/repo/src/kernels/cost_models.cpp" "CMakeFiles/das.dir/src/kernels/cost_models.cpp.o" "gcc" "CMakeFiles/das.dir/src/kernels/cost_models.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "CMakeFiles/das.dir/src/kernels/matmul.cpp.o" "gcc" "CMakeFiles/das.dir/src/kernels/matmul.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "CMakeFiles/das.dir/src/kernels/registry.cpp.o" "gcc" "CMakeFiles/das.dir/src/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "CMakeFiles/das.dir/src/kernels/stencil.cpp.o" "gcc" "CMakeFiles/das.dir/src/kernels/stencil.cpp.o.d"
  "/root/repo/src/net/comm.cpp" "CMakeFiles/das.dir/src/net/comm.cpp.o" "gcc" "CMakeFiles/das.dir/src/net/comm.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "CMakeFiles/das.dir/src/net/mailbox.cpp.o" "gcc" "CMakeFiles/das.dir/src/net/mailbox.cpp.o.d"
  "/root/repo/src/net/world.cpp" "CMakeFiles/das.dir/src/net/world.cpp.o" "gcc" "CMakeFiles/das.dir/src/net/world.cpp.o.d"
  "/root/repo/src/platform/affinity.cpp" "CMakeFiles/das.dir/src/platform/affinity.cpp.o" "gcc" "CMakeFiles/das.dir/src/platform/affinity.cpp.o.d"
  "/root/repo/src/platform/speed_model.cpp" "CMakeFiles/das.dir/src/platform/speed_model.cpp.o" "gcc" "CMakeFiles/das.dir/src/platform/speed_model.cpp.o.d"
  "/root/repo/src/platform/throttle.cpp" "CMakeFiles/das.dir/src/platform/throttle.cpp.o" "gcc" "CMakeFiles/das.dir/src/platform/throttle.cpp.o.d"
  "/root/repo/src/platform/topology.cpp" "CMakeFiles/das.dir/src/platform/topology.cpp.o" "gcc" "CMakeFiles/das.dir/src/platform/topology.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "CMakeFiles/das.dir/src/rt/runtime.cpp.o" "gcc" "CMakeFiles/das.dir/src/rt/runtime.cpp.o.d"
  "/root/repo/src/rt/worker.cpp" "CMakeFiles/das.dir/src/rt/worker.cpp.o" "gcc" "CMakeFiles/das.dir/src/rt/worker.cpp.o.d"
  "/root/repo/src/rt/wsq.cpp" "CMakeFiles/das.dir/src/rt/wsq.cpp.o" "gcc" "CMakeFiles/das.dir/src/rt/wsq.cpp.o.d"
  "/root/repo/src/scenario/scenario.cpp" "CMakeFiles/das.dir/src/scenario/scenario.cpp.o" "gcc" "CMakeFiles/das.dir/src/scenario/scenario.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/das.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/das.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/das.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/das.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/das.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/das.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/trace/reporter.cpp" "CMakeFiles/das.dir/src/trace/reporter.cpp.o" "gcc" "CMakeFiles/das.dir/src/trace/reporter.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "CMakeFiles/das.dir/src/trace/stats.cpp.o" "gcc" "CMakeFiles/das.dir/src/trace/stats.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "CMakeFiles/das.dir/src/trace/timeline.cpp.o" "gcc" "CMakeFiles/das.dir/src/trace/timeline.cpp.o.d"
  "/root/repo/src/util/format.cpp" "CMakeFiles/das.dir/src/util/format.cpp.o" "gcc" "CMakeFiles/das.dir/src/util/format.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/das.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/das.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/time.cpp" "CMakeFiles/das.dir/src/util/time.cpp.o" "gcc" "CMakeFiles/das.dir/src/util/time.cpp.o.d"
  "/root/repo/src/workloads/heat.cpp" "CMakeFiles/das.dir/src/workloads/heat.cpp.o" "gcc" "CMakeFiles/das.dir/src/workloads/heat.cpp.o.d"
  "/root/repo/src/workloads/interference.cpp" "CMakeFiles/das.dir/src/workloads/interference.cpp.o" "gcc" "CMakeFiles/das.dir/src/workloads/interference.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "CMakeFiles/das.dir/src/workloads/kmeans.cpp.o" "gcc" "CMakeFiles/das.dir/src/workloads/kmeans.cpp.o.d"
  "/root/repo/src/workloads/synthetic_dag.cpp" "CMakeFiles/das.dir/src/workloads/synthetic_dag.cpp.o" "gcc" "CMakeFiles/das.dir/src/workloads/synthetic_dag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
