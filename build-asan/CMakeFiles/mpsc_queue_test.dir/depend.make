# Empty dependencies file for mpsc_queue_test.
# This may be replaced when dependencies are built.
