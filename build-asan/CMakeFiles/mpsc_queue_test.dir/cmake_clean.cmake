file(REMOVE_RECURSE
  "CMakeFiles/mpsc_queue_test.dir/tests/mpsc_queue_test.cpp.o"
  "CMakeFiles/mpsc_queue_test.dir/tests/mpsc_queue_test.cpp.o.d"
  "mpsc_queue_test"
  "mpsc_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsc_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
