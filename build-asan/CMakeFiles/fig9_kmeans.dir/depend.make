# Empty dependencies file for fig9_kmeans.
# This may be replaced when dependencies are built.
