file(REMOVE_RECURSE
  "CMakeFiles/fig9_kmeans.dir/bench/fig9_kmeans.cpp.o"
  "CMakeFiles/fig9_kmeans.dir/bench/fig9_kmeans.cpp.o.d"
  "bench/fig9_kmeans"
  "bench/fig9_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
