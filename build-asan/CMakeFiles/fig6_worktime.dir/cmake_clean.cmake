file(REMOVE_RECURSE
  "CMakeFiles/fig6_worktime.dir/bench/fig6_worktime.cpp.o"
  "CMakeFiles/fig6_worktime.dir/bench/fig6_worktime.cpp.o.d"
  "bench/fig6_worktime"
  "bench/fig6_worktime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_worktime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
