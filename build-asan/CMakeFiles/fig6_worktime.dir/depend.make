# Empty dependencies file for fig6_worktime.
# This may be replaced when dependencies are built.
