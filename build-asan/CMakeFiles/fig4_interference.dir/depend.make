# Empty dependencies file for fig4_interference.
# This may be replaced when dependencies are built.
