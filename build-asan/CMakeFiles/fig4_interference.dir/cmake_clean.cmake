file(REMOVE_RECURSE
  "CMakeFiles/fig4_interference.dir/bench/fig4_interference.cpp.o"
  "CMakeFiles/fig4_interference.dir/bench/fig4_interference.cpp.o.d"
  "bench/fig4_interference"
  "bench/fig4_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
