file(REMOVE_RECURSE
  "CMakeFiles/baseline_dheft.dir/bench/baseline_dheft.cpp.o"
  "CMakeFiles/baseline_dheft.dir/bench/baseline_dheft.cpp.o.d"
  "bench/baseline_dheft"
  "bench/baseline_dheft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_dheft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
