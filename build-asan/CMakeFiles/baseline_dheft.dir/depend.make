# Empty dependencies file for baseline_dheft.
# This may be replaced when dependencies are built.
