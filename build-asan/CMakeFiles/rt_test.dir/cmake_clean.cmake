file(REMOVE_RECURSE
  "CMakeFiles/rt_test.dir/tests/rt_test.cpp.o"
  "CMakeFiles/rt_test.dir/tests/rt_test.cpp.o.d"
  "rt_test"
  "rt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
