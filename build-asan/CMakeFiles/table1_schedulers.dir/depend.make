# Empty dependencies file for table1_schedulers.
# This may be replaced when dependencies are built.
