file(REMOVE_RECURSE
  "CMakeFiles/table1_schedulers.dir/bench/table1_schedulers.cpp.o"
  "CMakeFiles/table1_schedulers.dir/bench/table1_schedulers.cpp.o.d"
  "bench/table1_schedulers"
  "bench/table1_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
