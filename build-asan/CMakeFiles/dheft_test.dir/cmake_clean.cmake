file(REMOVE_RECURSE
  "CMakeFiles/dheft_test.dir/tests/dheft_test.cpp.o"
  "CMakeFiles/dheft_test.dir/tests/dheft_test.cpp.o.d"
  "dheft_test"
  "dheft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dheft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
