# Empty dependencies file for dheft_test.
# This may be replaced when dependencies are built.
