# Empty dependencies file for two_level_search_test.
# This may be replaced when dependencies are built.
