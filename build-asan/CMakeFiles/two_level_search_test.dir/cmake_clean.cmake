file(REMOVE_RECURSE
  "CMakeFiles/two_level_search_test.dir/tests/two_level_search_test.cpp.o"
  "CMakeFiles/two_level_search_test.dir/tests/two_level_search_test.cpp.o.d"
  "two_level_search_test"
  "two_level_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_level_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
