file(REMOVE_RECURSE
  "CMakeFiles/ptt_test.dir/tests/ptt_test.cpp.o"
  "CMakeFiles/ptt_test.dir/tests/ptt_test.cpp.o.d"
  "ptt_test"
  "ptt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
