# Empty dependencies file for ptt_test.
# This may be replaced when dependencies are built.
