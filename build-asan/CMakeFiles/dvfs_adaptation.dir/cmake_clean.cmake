file(REMOVE_RECURSE
  "CMakeFiles/dvfs_adaptation.dir/examples/dvfs_adaptation.cpp.o"
  "CMakeFiles/dvfs_adaptation.dir/examples/dvfs_adaptation.cpp.o.d"
  "examples/dvfs_adaptation"
  "examples/dvfs_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
