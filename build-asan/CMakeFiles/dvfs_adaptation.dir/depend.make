# Empty dependencies file for dvfs_adaptation.
# This may be replaced when dependencies are built.
