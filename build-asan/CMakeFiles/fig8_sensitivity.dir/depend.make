# Empty dependencies file for fig8_sensitivity.
# This may be replaced when dependencies are built.
