file(REMOVE_RECURSE
  "CMakeFiles/fig8_sensitivity.dir/bench/fig8_sensitivity.cpp.o"
  "CMakeFiles/fig8_sensitivity.dir/bench/fig8_sensitivity.cpp.o.d"
  "bench/fig8_sensitivity"
  "bench/fig8_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
