# Empty dependencies file for criticality_test.
# This may be replaced when dependencies are built.
