file(REMOVE_RECURSE
  "CMakeFiles/criticality_test.dir/tests/criticality_test.cpp.o"
  "CMakeFiles/criticality_test.dir/tests/criticality_test.cpp.o.d"
  "criticality_test"
  "criticality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criticality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
