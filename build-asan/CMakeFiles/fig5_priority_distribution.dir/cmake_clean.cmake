file(REMOVE_RECURSE
  "CMakeFiles/fig5_priority_distribution.dir/bench/fig5_priority_distribution.cpp.o"
  "CMakeFiles/fig5_priority_distribution.dir/bench/fig5_priority_distribution.cpp.o.d"
  "bench/fig5_priority_distribution"
  "bench/fig5_priority_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_priority_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
