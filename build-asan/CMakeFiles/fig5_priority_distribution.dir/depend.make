# Empty dependencies file for fig5_priority_distribution.
# This may be replaced when dependencies are built.
