# Empty dependencies file for speed_model_test.
# This may be replaced when dependencies are built.
