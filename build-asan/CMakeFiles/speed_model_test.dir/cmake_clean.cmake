file(REMOVE_RECURSE
  "CMakeFiles/speed_model_test.dir/tests/speed_model_test.cpp.o"
  "CMakeFiles/speed_model_test.dir/tests/speed_model_test.cpp.o.d"
  "speed_model_test"
  "speed_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
