file(REMOVE_RECURSE
  "CMakeFiles/custom_topology.dir/examples/custom_topology.cpp.o"
  "CMakeFiles/custom_topology.dir/examples/custom_topology.cpp.o.d"
  "examples/custom_topology"
  "examples/custom_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
