file(REMOVE_RECURSE
  "CMakeFiles/job_service_test.dir/tests/job_service_test.cpp.o"
  "CMakeFiles/job_service_test.dir/tests/job_service_test.cpp.o.d"
  "job_service_test"
  "job_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
