# Empty dependencies file for job_service_test.
# This may be replaced when dependencies are built.
