# Empty dependencies file for validation_realruntime.
# This may be replaced when dependencies are built.
