file(REMOVE_RECURSE
  "CMakeFiles/validation_realruntime.dir/bench/validation_realruntime.cpp.o"
  "CMakeFiles/validation_realruntime.dir/bench/validation_realruntime.cpp.o.d"
  "bench/validation_realruntime"
  "bench/validation_realruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_realruntime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
