# Empty dependencies file for heat_distributed.
# This may be replaced when dependencies are built.
