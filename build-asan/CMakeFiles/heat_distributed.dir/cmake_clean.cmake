file(REMOVE_RECURSE
  "CMakeFiles/heat_distributed.dir/examples/heat_distributed.cpp.o"
  "CMakeFiles/heat_distributed.dir/examples/heat_distributed.cpp.o.d"
  "examples/heat_distributed"
  "examples/heat_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
