file(REMOVE_RECURSE
  "CMakeFiles/kmeans_clustering.dir/examples/kmeans_clustering.cpp.o"
  "CMakeFiles/kmeans_clustering.dir/examples/kmeans_clustering.cpp.o.d"
  "examples/kmeans_clustering"
  "examples/kmeans_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
