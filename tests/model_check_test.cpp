// Deterministic model-checking of the lock-free core (src/chk): the REAL
// primitive templates instantiated with chk::Model run under exhaustive
// small-bound schedules and seeded random sweeps, asserting
//
//   - MpscQueue: FIFO per producer, payload publication (no race on the
//     non-atomic tag/payload), unlink-before-reuse;
//   - EventCount: no lost wakeup (a parked waiter is always woken);
//   - WsDeque: every item taken exactly once (no loss, no double-take),
//     stolen payloads published;
//   - RingBuffer: matches a reference deque over every op sequence,
//     including growth while the ring is wrapped;
//
// and that seeded memory-order mutants (chk::Mutant) are each CAUGHT while
// the unmutated algorithms pass. The default ctest run explores >= 10k
// distinct interleavings per primitive (see the *Coverage tests). A longer
// randomized sweep runs when DAS_CHK_LONG is set (scheduled CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "chk/chk.hpp"
#include "rt/wsq.hpp"
#include "sim/boundary_queue.hpp"
#include "sim/rank_sync.hpp"
#include "util/eventcount.hpp"
#include "util/mpsc_queue.hpp"
#include "util/ring_buffer.hpp"

namespace das {
namespace {

namespace chk = das::chk;

/// Resets the process-global mutant on scope exit so a failing mutant test
/// cannot poison later tests.
struct MutantGuard {
  explicit MutantGuard(chk::Mutant m) { chk::set_mutant(m); }
  ~MutantGuard() { chk::set_mutant(chk::Mutant::kNone); }
};

bool long_mode() { return std::getenv("DAS_CHK_LONG") != nullptr; }

// ---------------------------------------------------------------------------
// MpscQueue scenarios

using ChkMpsc = BasicMpscQueue<chk::Model>;

/// One producer pushes two tagged nodes; the consumer pops both and asserts
/// FIFO order. Payloads are chk::Var cells, so a missing release/acquire
/// edge on the queue's internal `next` pointers surfaces as a data race.
chk::Scenario mpsc_small_scenario() {
  struct State {
    ChkMpsc q;
    ChkMpsc::Node n1, n2;
    chk::Var<int> v1{0}, v2{0};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {
    st->v1 = 101;
    st->q.push(&st->n1, &st->v1);
    st->v2 = 202;
    st->q.push(&st->n2, &st->v2);
  });
  s.threads.push_back([st] {
    int got = 0;
    int vals[2] = {0, 0};
    while (got < 2) {
      void* t = st->q.pop();
      if (t != nullptr)
        vals[got++] = *static_cast<chk::Var<int>*>(t);
      else
        chk::spin_yield();
    }
    chk::expect(vals[0] == 101 && vals[1] == 202,
                "mpsc: FIFO per producer violated");
  });
  return s;
}

/// Unlink-before-reuse under concurrency: the consumer re-pushes a node the
/// moment pop() returned it, while another producer is pushing. If pop
/// handed the node back before the queue unlinked it, the chain corrupts
/// and an item is lost or duplicated.
chk::Scenario mpsc_reuse_scenario() {
  struct State {
    ChkMpsc q;
    ChkMpsc::Node n1, n2;
    chk::Var<int> v1{0}, v2{0}, v3{0};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {
    st->v2 = 202;
    st->q.push(&st->n2, &st->v2);
  });
  s.threads.push_back([st] {
    st->v1 = 101;
    st->q.push(&st->n1, &st->v1);
    std::vector<int> got;
    bool reused = false;
    while (got.size() < 3) {
      void* t = st->q.pop();
      if (t == nullptr) {
        chk::spin_yield();
        continue;
      }
      got.push_back(*static_cast<chk::Var<int>*>(t));
      if (t == &st->v1 && !reused) {
        reused = true;  // n1 is ours again: recycle it immediately
        st->v3 = 303;
        st->q.push(&st->n1, &st->v3);
      }
    }
    chk::expect(got[0] == 101 || got[0] == 202, "mpsc: unknown first tag");
    std::multiset<int> all(got.begin(), got.end());
    chk::expect(all == std::multiset<int>({101, 202, 303}),
                "mpsc: reuse lost or duplicated an item");
  });
  return s;
}

/// Two producers, two items each: global order is free, per-producer order
/// is not.
chk::Scenario mpsc_two_producer_scenario() {
  struct State {
    ChkMpsc q;
    ChkMpsc::Node n[4];
    chk::Var<int> v[4];
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  for (int p = 0; p < 2; ++p) {
    s.threads.push_back([st, p] {
      for (int i = 0; i < 2; ++i) {
        const int idx = p * 2 + i;
        st->v[idx] = 100 * (p + 1) + i;
        st->q.push(&st->n[idx], &st->v[idx]);
      }
    });
  }
  s.threads.push_back([st] {
    std::vector<int> got;
    while (got.size() < 4) {
      void* t = st->q.pop();
      if (t != nullptr)
        got.push_back(*static_cast<chk::Var<int>*>(t));
      else
        chk::spin_yield();
    }
    int last1 = -1, last2 = -1;
    for (int v : got) {
      if (v / 100 == 1) {
        chk::expect(v > last1, "mpsc: producer-1 order inverted");
        last1 = v;
      } else {
        chk::expect(v > last2, "mpsc: producer-2 order inverted");
        last2 = v;
      }
    }
    chk::expect(last1 == 101 && last2 == 201, "mpsc: item lost");
  });
  return s;
}

TEST(ModelCheckMpsc, SmallBoundSchedules) {
  chk::Options o;
  o.max_schedules = 30000;
  auto r = chk::explore(o, mpsc_small_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_GE(r.distinct_interleavings, 100u);
}

TEST(ModelCheckMpsc, NodeReuseAfterPop) {
  chk::Options o;
  o.max_schedules = 20000;
  auto r = chk::explore(o, mpsc_reuse_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelCheckMpsc, TwoProducersRandomSweep) {
  chk::Options o;
  o.mode = chk::Options::Mode::kRandom;
  o.max_schedules = long_mode() ? 200000 : 9000;
  o.seed = 0xDA5;
  auto r = chk::explore(o, mpsc_two_producer_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelCheckMpsc, CoverageAtLeast10k) {
  chk::Options dfs;
  dfs.max_schedules = 30000;
  auto r1 = chk::explore(dfs, mpsc_small_scenario);
  ASSERT_TRUE(r1.ok) << r1.violation;
  chk::Options rnd;
  rnd.mode = chk::Options::Mode::kRandom;
  rnd.max_schedules = 9000;
  rnd.seed = 7;
  auto r2 = chk::explore(rnd, mpsc_two_producer_scenario);
  ASSERT_TRUE(r2.ok) << r2.violation;
  const auto total = r1.distinct_interleavings + r2.distinct_interleavings;
  RecordProperty("mpsc_interleavings", static_cast<int>(total));
  EXPECT_GE(total, 10000u);
}

TEST(ModelCheckMpscMutants, ReleasePublishDowngradeCaught) {
  MutantGuard g(chk::Mutant::kStoreReleaseToRelaxed);
  chk::Options o;
  o.max_schedules = 50000;
  auto r = chk::explore(o, mpsc_small_scenario);
  EXPECT_FALSE(r.ok) << "mutant 1 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("race"), std::string::npos) << r.violation;
}

TEST(ModelCheckMpscMutants, AcquireConsumeDowngradeCaught) {
  MutantGuard g(chk::Mutant::kLoadAcquireToRelaxed);
  chk::Options o;
  o.max_schedules = 50000;
  auto r = chk::explore(o, mpsc_small_scenario);
  EXPECT_FALSE(r.ok) << "mutant 5 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("race"), std::string::npos) << r.violation;
}

// ---------------------------------------------------------------------------
// EventCount scenarios

using ChkEc = BasicEventCount<chk::Model>;

/// The canonical lost-wakeup duel: a waiter parks unless it sees the flag;
/// the notifier raises the flag then notifies. Every schedule must
/// terminate (deadlock detection covers "parked forever") and the waiter
/// must observe the flag raised once it returns.
chk::Scenario ec_scenario() {
  struct State {
    ChkEc ec;
    chk::Atomic<int> flag{0};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {
    const auto key = st->ec.prepare_wait();
    if (st->flag.load(std::memory_order_acquire) != 0)
      st->ec.cancel_wait();
    else
      st->ec.commit_wait(key);
    chk::expect(st->flag.load(std::memory_order_acquire) == 1,
                "eventcount: woke without the flag raised");
  });
  s.threads.push_back([st] {
    st->flag.store(1, std::memory_order_release);
    st->ec.notify();
  });
  return s;
}

/// Wider variant for the random sweep: two notifiers, a waiter that parks
/// repeatedly until both increments landed.
chk::Scenario ec_wide_scenario() {
  struct State {
    ChkEc ec;
    chk::Atomic<int> flag{0};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {
    while (st->flag.load(std::memory_order_acquire) != 2) {
      const auto key = st->ec.prepare_wait();
      if (st->flag.load(std::memory_order_acquire) != 2)
        st->ec.commit_wait(key);
      else
        st->ec.cancel_wait();
    }
  });
  for (int i = 0; i < 2; ++i) {
    s.threads.push_back([st] {
      st->flag.fetch_add(1, std::memory_order_release);
      st->ec.notify();
    });
  }
  return s;
}

TEST(ModelCheckEventCount, ExhaustiveNoLostWakeup) {
  chk::Options o;
  o.max_schedules = 60000;
  auto r = chk::explore(o, ec_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted) << "state space larger than expected: "
                           << r.schedules << " schedules";
}

TEST(ModelCheckEventCount, RandomWideSweep) {
  chk::Options o;
  o.mode = chk::Options::Mode::kRandom;
  o.max_schedules = long_mode() ? 150000 : 10000;
  o.seed = 0xEC;
  auto r = chk::explore(o, ec_wide_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelCheckEventCount, CoverageAtLeast10k) {
  chk::Options dfs;
  dfs.max_schedules = 60000;
  auto r1 = chk::explore(dfs, ec_scenario);
  ASSERT_TRUE(r1.ok) << r1.violation;
  chk::Options rnd;
  rnd.mode = chk::Options::Mode::kRandom;
  rnd.max_schedules = 11000;
  rnd.seed = 11;
  auto r2 = chk::explore(rnd, ec_wide_scenario);
  ASSERT_TRUE(r2.ok) << r2.violation;
  const auto total = r1.distinct_interleavings + r2.distinct_interleavings;
  RecordProperty("eventcount_interleavings", static_cast<int>(total));
  EXPECT_GE(total, 10000u);
}

TEST(ModelCheckEventCountMutants, SeqCstFenceDowngradeIsLostWakeup) {
  MutantGuard g(chk::Mutant::kFenceSeqCstToRelaxed);
  chk::Options o;
  o.max_schedules = 60000;
  auto r = chk::explore(o, ec_scenario);
  EXPECT_FALSE(r.ok) << "mutant 2 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("deadlock"), std::string::npos) << r.violation;
}

// ---------------------------------------------------------------------------
// WsDeque scenarios

using ChkWsq = rt::WsDeque<chk::Var<int>, chk::Model>;

struct WsqState {
  ChkWsq dq{4};
  chk::Var<int> a{0}, b{0};
  chk::Var<int>* owner_got[2] = {nullptr, nullptr};
  chk::Var<int>* thief_got[2] = {nullptr, nullptr};
};

void wsq_check_partition(const std::shared_ptr<WsqState>& st, int pushed) {
  std::vector<chk::Var<int>*> taken;
  for (auto* p : st->owner_got)
    if (p != nullptr) taken.push_back(p);
  for (auto* p : st->thief_got)
    if (p != nullptr) taken.push_back(p);
  chk::expect(static_cast<int>(taken.size()) == pushed,
              "wsq: an item was lost or taken twice (count)");
  std::set<chk::Var<int>*> uniq(taken.begin(), taken.end());
  chk::expect(static_cast<int>(uniq.size()) == pushed,
              "wsq: an item was taken twice");
  for (auto* p : uniq)
    chk::expect(p == &st->a || p == &st->b, "wsq: unknown item");
}

/// One item, one steal attempt: exhaustively provable.
chk::Scenario wsq_one_item_scenario() {
  auto st = std::make_shared<WsqState>();
  chk::Scenario s;
  s.threads.push_back([st] {
    st->a = 1;
    st->dq.push_bottom(&st->a);
    st->owner_got[0] = st->dq.pop_bottom();
    if (st->owner_got[0] != nullptr)
      chk::expect(*st->owner_got[0] == 1, "wsq: owner read torn payload");
  });
  s.threads.push_back([st] {
    st->thief_got[0] = st->dq.steal_top();
    if (st->thief_got[0] != nullptr)
      chk::expect(*st->thief_got[0] == 1, "wsq: thief read torn payload");
  });
  s.check = [st] { wsq_check_partition(st, 1); };
  return s;
}

/// Two items, two pops, two steal attempts: the scenario that exposes the
/// classic double-take when the seq_cst fences in pop_bottom/steal_top are
/// weakened (owner reads a stale top_ and keeps the item a thief already
/// has; the second steal reads a stale bottom_ and takes it again).
chk::Scenario wsq_two_item_scenario() {
  auto st = std::make_shared<WsqState>();
  chk::Scenario s;
  s.threads.push_back([st] {
    st->a = 1;
    st->dq.push_bottom(&st->a);
    st->b = 2;
    st->dq.push_bottom(&st->b);
    for (int i = 0; i < 2; ++i) {
      st->owner_got[i] = st->dq.pop_bottom();
      if (st->owner_got[i] != nullptr) {
        const int v = *st->owner_got[i];
        chk::expect(v == 1 || v == 2, "wsq: owner read torn payload");
      }
    }
  });
  s.threads.push_back([st] {
    for (int i = 0; i < 2; ++i) {
      st->thief_got[i] = st->dq.steal_top();
      if (st->thief_got[i] != nullptr) {
        const int v = *st->thief_got[i];
        chk::expect(v == 1 || v == 2, "wsq: thief read torn payload");
      }
    }
  });
  s.check = [st] { wsq_check_partition(st, 2); };
  return s;
}

TEST(ModelCheckWsq, OneItemExhaustive) {
  chk::Options o;
  o.max_schedules = 200000;
  auto r = chk::explore(o, wsq_one_item_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted) << "state space larger than expected: "
                           << r.schedules << " schedules";
}

TEST(ModelCheckWsq, TwoItemBoundedDfs) {
  chk::Options o;
  o.max_schedules = long_mode() ? 400000 : 12000;
  auto r = chk::explore(o, wsq_two_item_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelCheckWsq, CoverageAtLeast10k) {
  chk::Options o;
  o.max_schedules = 12000;
  auto r = chk::explore(o, wsq_two_item_scenario);
  ASSERT_TRUE(r.ok) << r.violation;
  RecordProperty("wsq_interleavings",
                 static_cast<int>(r.distinct_interleavings));
  EXPECT_GE(r.distinct_interleavings, 10000u);
}

TEST(ModelCheckWsqMutants, SeqCstFenceDowngradeIsDoubleTake) {
  MutantGuard g(chk::Mutant::kWsqFenceSeqCstToRelaxed);
  chk::Options o;
  o.max_schedules = 200000;
  auto r = chk::explore(o, wsq_two_item_scenario);
  EXPECT_FALSE(r.ok) << "mutant 3 survived " << r.schedules << " schedules";
}

// ---------------------------------------------------------------------------
// RingBuffer scenarios (single-threaded container: the checker enumerates
// every operation sequence against a reference deque)

template <bool kMutant>
chk::Scenario ring_scenario(int steps) {
  chk::Scenario s;
  s.threads.push_back([steps] {
    RingBuffer<int, kMutant> rb;
    std::deque<int> ref;
    int seq = 0;
    for (int i = 0; i < steps; ++i) {
      switch (chk::choice(3)) {
        case 0:
          rb.push_back(seq);
          ref.push_back(seq);
          ++seq;
          break;
        case 1:
          if (!ref.empty()) {
            chk::expect(rb.front() == ref.front(), "ring: front mismatch");
            rb.pop_front();
            ref.pop_front();
          }
          break;
        default:
          if (!ref.empty()) {
            chk::expect(rb.back() == ref.back(), "ring: back mismatch");
            rb.pop_back();
            ref.pop_back();
          }
          break;
      }
      chk::expect(rb.size() == ref.size(), "ring: size mismatch");
    }
    while (!ref.empty()) {
      chk::expect(rb.front() == ref.front(), "ring: drain mismatch");
      rb.pop_front();
      ref.pop_front();
    }
    chk::expect(rb.empty(), "ring: not empty after drain");
  });
  return s;
}

/// Deterministic sequence that grows the ring while head_ is wrapped — the
/// exact case the kMutantWrap template parameter corrupts.
template <bool kMutant>
chk::Scenario ring_wrap_grow_scenario() {
  chk::Scenario s;
  s.threads.push_back([] {
    RingBuffer<int, kMutant> rb;
    std::deque<int> ref;
    int seq = 0;
    for (int i = 0; i < 8; ++i) {
      rb.push_back(seq);
      ref.push_back(seq);
      ++seq;
    }
    for (int i = 0; i < 5; ++i) {
      rb.pop_front();
      ref.pop_front();
    }
    for (int i = 0; i < 5; ++i) {  // head_ is now mid-ring; these wrap
      rb.push_back(seq);
      ref.push_back(seq);
      ++seq;
    }
    rb.push_back(seq);  // 9th live slot: grows from 8 to 16 while wrapped
    ref.push_back(seq);
    while (!ref.empty()) {
      chk::expect(rb.front() == ref.front(), "ring: wrap-grow mismatch");
      rb.pop_front();
      ref.pop_front();
    }
  });
  return s;
}

TEST(ModelCheckRing, ExhaustiveOpSequences) {
  chk::Options o;
  o.max_schedules = 25000;
  auto r = chk::explore(o, [] { return ring_scenario<false>(9); });
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
  RecordProperty("ring_interleavings",
                 static_cast<int>(r.distinct_interleavings));
  EXPECT_GE(r.distinct_interleavings, 10000u);  // 3^9 = 19683
}

TEST(ModelCheckRing, WrapGrowIsCorrect) {
  chk::Options o;
  auto r = chk::explore(o, ring_wrap_grow_scenario<false>);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelCheckRingMutants, WrapCopyBugCaught) {
  chk::Options o;
  auto r = chk::explore(o, ring_wrap_grow_scenario<true>);
  EXPECT_FALSE(r.ok) << "mutant 4 survived";
  EXPECT_NE(r.violation.find("ring"), std::string::npos) << r.violation;
}

// ---------------------------------------------------------------------------
// Parallel-DES window protocol scenarios (sim/boundary_queue.hpp,
// sim/rank_sync.hpp). These explore the REAL templates the conservative
// parallel engine (sim/engine.cpp) is built on, and encode its three
// ordering claims BEFORE any real thread runs them:
//
//   1. ring publication — a release staged by the sender rank's push() is
//      visible (payload and all) to a concurrently draining receiver;
//   2. phase handoff — spill overflow and next-event clocks published
//      before a rank's phase store are visible after wait_all_at_least,
//      and drain order is push order (seq assignment determinism);
//   3. park/wake — a rank parked at a window-phase boundary is always
//      woken by the last straggler's publish.
//
// Each claim has a seeded mutant test that must FAIL the exploration.

using ChkBoundary = sim::BasicBoundaryQueue<std::uint64_t, chk::Model>;
using ChkRankSync = sim::BasicRankSync<chk::Model>;

/// Claim 1: producer pushes two releases into the ring while the consumer
/// concurrently drains. Slots are chk::Var cells, so consuming a slot not
/// ordered by the tail_ release/acquire pair is a data race; order must be
/// push order.
chk::Scenario boundary_ring_scenario() {
  struct State {
    ChkBoundary q{4};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {
    st->q.push(11);
    st->q.push(22);
  });
  s.threads.push_back([st] {
    std::uint64_t got[2] = {0, 0};
    std::size_t n = 0;
    while (n < 2) {
      st->q.drain([&](std::uint64_t v) {
        if (n < 2) got[n] = v;
        ++n;
      });
      if (n < 2) chk::spin_yield();
    }
    chk::expect(n == 2 && got[0] == 11 && got[1] == 22,
                "boundary: ring drain lost or reordered releases");
  });
  return s;
}

/// Claims 1+2 together, exactly as the engine's window round uses them: the
/// sender stages three releases into a capacity-2 ring (the third spills),
/// publishes its next-event clock, then its phase epoch. The receiver
/// publishes its own clock/phase, waits for the round, drains, and computes
/// the window-min. The spill vector and time slots are plain cells — their
/// safety is exactly the happens-before edge of publish_phase /
/// wait_all_at_least.
chk::Scenario window_phase_scenario() {
  struct State {
    ChkBoundary q{2};
    ChkRankSync sync{2};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {  // rank 0: phase 1 of a window round
    st->q.push(1);
    st->q.push(2);
    st->q.push(3);  // ring full -> spills
    st->sync.set_time(0, 1.5);
    st->sync.publish_phase(0, 1);
    // (The round-close wait is exercised by rank_sync_park_scenario;
    // leaving it out keeps this state space exhaustible and keeps the
    // no-park schedules — the ones a downgraded publish races in — near
    // the front of the DFS order.)
  });
  s.threads.push_back([st] {  // rank 1: phase 2 (drain + window-min)
    st->sync.set_time(1, 2.5);
    st->sync.publish_phase(1, 1);
    st->sync.wait_all_at_least(1);
    std::uint64_t got[3] = {0, 0, 0};
    std::size_t n = 0;
    st->q.drain([&](std::uint64_t v) {
      if (n < 3) got[n] = v;
      ++n;
    });
    chk::expect(n == 3 && got[0] == 1 && got[1] == 2 && got[2] == 3,
                "boundary: staged releases lost across the phase boundary");
    chk::expect(st->sync.min_time() == 1.5,
                "rank-sync: window-min read a stale clock");
  });
  return s;
}

/// Claim 3: two ranks finish a phase in either order; each waits for the
/// other. A lost wakeup (the engine's round-close handshake) is a deadlock.
chk::Scenario rank_sync_park_scenario() {
  struct State {
    ChkRankSync sync{2};
  };
  auto st = std::make_shared<State>();
  chk::Scenario s;
  s.threads.push_back([st] {
    st->sync.publish_phase(0, 1);
    st->sync.wait_all_at_least(1);
  });
  s.threads.push_back([st] {
    st->sync.publish_phase(1, 1);
    st->sync.wait_all_at_least(1);
  });
  return s;
}

TEST(ModelCheckParallelDes, BoundaryRingExhaustive) {
  chk::Options o;
  o.max_schedules = 60000;
  auto r = chk::explore(o, boundary_ring_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelCheckParallelDes, WindowPhaseHandoffBoundedDfs) {
  chk::Options o;
  o.max_schedules = long_mode() ? 400000 : 100000;
  auto r = chk::explore(o, window_phase_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelCheckParallelDes, ParkWakeBoundedDfs) {
  chk::Options o;
  o.max_schedules = long_mode() ? 400000 : 60000;
  auto r = chk::explore(o, rank_sync_park_scenario);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelCheckParallelDes, CoverageAtLeast10k) {
  std::uint64_t total = 0;
  for (auto* scen : {&boundary_ring_scenario, &window_phase_scenario,
                     &rank_sync_park_scenario}) {
    chk::Options o;
    o.max_schedules = 100000;
    total += chk::explore(o, *scen).distinct_interleavings;
  }
  chk::Options rnd;
  rnd.mode = chk::Options::Mode::kRandom;
  rnd.seed = 0xb0a7;
  rnd.max_schedules = long_mode() ? 200000 : 11000;
  total += chk::explore(rnd, window_phase_scenario).distinct_interleavings;
  RecordProperty("parallel_des_interleavings", static_cast<int>(total));
  EXPECT_GE(total, 10000u);
}

TEST(ModelCheckParallelDesMutants, RingPublishDowngradeCaught) {
  MutantGuard g(chk::Mutant::kStoreReleaseToRelaxed);
  chk::Options o;
  o.max_schedules = 60000;
  auto r = chk::explore(o, boundary_ring_scenario);
  EXPECT_FALSE(r.ok) << "mutant 1 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("race"), std::string::npos) << r.violation;
}

TEST(ModelCheckParallelDesMutants, RingConsumeDowngradeCaught) {
  MutantGuard g(chk::Mutant::kLoadAcquireToRelaxed);
  chk::Options o;
  o.max_schedules = 60000;
  auto r = chk::explore(o, boundary_ring_scenario);
  EXPECT_FALSE(r.ok) << "mutant 5 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("race"), std::string::npos) << r.violation;
}

TEST(ModelCheckParallelDesMutants, PhasePublishDowngradeCaught) {
  MutantGuard g(chk::Mutant::kStoreReleaseToRelaxed);
  chk::Options o;
  o.max_schedules = 100000;
  auto r = chk::explore(o, window_phase_scenario);
  EXPECT_FALSE(r.ok) << "mutant 1 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("race"), std::string::npos) << r.violation;
}

TEST(ModelCheckParallelDesMutants, ParkWakeFenceDowngradeIsDeadlock) {
  MutantGuard g(chk::Mutant::kFenceSeqCstToRelaxed);
  chk::Options o;
  o.max_schedules = 60000;
  auto r = chk::explore(o, rank_sync_park_scenario);
  EXPECT_FALSE(r.ok) << "mutant 2 survived " << r.schedules << " schedules";
  EXPECT_NE(r.violation.find("deadlock"), std::string::npos) << r.violation;
}

// ---------------------------------------------------------------------------
// Checker self-tests

TEST(ModelCheckEngine, DetectsAbbaDeadlock) {
  chk::Options o;
  o.max_schedules = 20000;
  auto r = chk::explore(o, [] {
    struct State {
      chk::Mutex m1, m2;
    };
    auto st = std::make_shared<State>();
    chk::Scenario s;
    s.threads.push_back([st] {
      st->m1.lock();
      st->m2.lock();
      st->m2.unlock();
      st->m1.unlock();
    });
    s.threads.push_back([st] {
      st->m2.lock();
      st->m1.lock();
      st->m1.unlock();
      st->m2.unlock();
    });
    return s;
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("deadlock"), std::string::npos) << r.violation;
}

TEST(ModelCheckEngine, RelaxedLoadsCanGoStale) {
  // Sanity that the memory model is actually weak: with only relaxed
  // accesses, some schedule lets the reader miss the writer's store.
  chk::Options o;
  o.max_schedules = 1000;
  auto r = chk::explore(o, [] {
    struct State {
      chk::Atomic<int> x{0};
    };
    auto st = std::make_shared<State>();
    chk::Scenario s;
    s.threads.push_back([st] { st->x.store(1, std::memory_order_relaxed); });
    s.threads.push_back([st] {
      chk::expect(st->x.load(std::memory_order_relaxed) == 1,
                  "reader saw stale value (expected for this self-test)");
    });
    return s;
  });
  EXPECT_FALSE(r.ok) << "model never produced a stale relaxed read";
}

TEST(ModelCheckEngine, MutantFromEnvParses) {
  EXPECT_EQ(chk::mutant_from_env(), chk::Mutant::kNone);
  ::setenv("DAS_CHK_MUTANT", "3", 1);
  EXPECT_EQ(chk::mutant_from_env(), chk::Mutant::kWsqFenceSeqCstToRelaxed);
  ::unsetenv("DAS_CHK_MUTANT");
  EXPECT_EQ(chk::mutant_from_env(), chk::Mutant::kNone);
}

/// Manual entry point: DAS_CHK_MUTANT=<n> ./model_check_test
/// --gtest_filter='*EnvMutant*' runs the scenario that mutant targets and
/// expects the checker to catch it. Skipped when the env var is unset.
TEST(ModelCheckEngine, EnvMutantIsCaught) {
  const auto m = chk::mutant_from_env();
  if (m == chk::Mutant::kNone) GTEST_SKIP() << "DAS_CHK_MUTANT not set";
  MutantGuard g(m);
  chk::Options o;
  o.max_schedules = 200000;
  chk::Result r;
  switch (m) {
    case chk::Mutant::kStoreReleaseToRelaxed:
    case chk::Mutant::kLoadAcquireToRelaxed:
      r = chk::explore(o, mpsc_small_scenario);
      break;
    case chk::Mutant::kFenceSeqCstToRelaxed:
      r = chk::explore(o, ec_scenario);
      break;
    case chk::Mutant::kWsqFenceSeqCstToRelaxed:
      r = chk::explore(o, wsq_two_item_scenario);
      break;
    case chk::Mutant::kRingBufferWrapCopy:
      r = chk::explore(o, ring_wrap_grow_scenario<true>);
      break;
    default:
      FAIL() << "unknown DAS_CHK_MUTANT";
  }
  EXPECT_FALSE(r.ok) << "mutant survived " << r.schedules << " schedules";
}

}  // namespace
}  // namespace das
