// Tests for the das::Executor facade: the backend/policy string registries
// round-trip over every Table-1 name, the same DAG runs to completion on
// both backends through make_executor with consistent RunResult / stats
// shapes, the multi-rank factory works, and the unified seed default holds.

#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "platform/affinity.hpp"
#include "rt/runtime.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag small_dag(int parallelism = 3, int tasks = 60) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = 16;  // small tiles: fast
    return workloads::make_synthetic_dag(spec);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST(ExecutorParse, PolicyRoundTripsOverAllTable1NamesAndDheft) {
  for (Policy p : all_policies()) {
    const auto parsed = parse_policy(policy_name(p));
    ASSERT_TRUE(parsed.has_value()) << policy_name(p);
    EXPECT_EQ(*parsed, p);
  }
  const auto dheft = parse_policy(policy_name(Policy::kDheft));
  ASSERT_TRUE(dheft.has_value());
  EXPECT_EQ(*dheft, Policy::kDheft);
}

TEST(ExecutorParse, PolicyIsCaseInsensitive) {
  EXPECT_EQ(parse_policy("dam-c"), Policy::kDamC);
  EXPECT_EQ(parse_policy("DAM-C"), Policy::kDamC);
  EXPECT_EQ(parse_policy("rwsm-c"), Policy::kRwsmC);
  EXPECT_EQ(parse_policy("DHEFT"), Policy::kDheft);
  EXPECT_EQ(parse_policy("dHEFT"), Policy::kDheft);
}

TEST(ExecutorParse, PolicyRejectsUnknownNames) {
  EXPECT_FALSE(parse_policy("").has_value());
  EXPECT_FALSE(parse_policy("DAM").has_value());
  EXPECT_FALSE(parse_policy("HEFT").has_value());
  EXPECT_FALSE(parse_policy("DAM_C").has_value());
}

TEST(ExecutorParse, BackendRoundTripsAndAliases) {
  for (Backend b : all_backends()) {
    const auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(parse_backend("SIM"), Backend::kSim);
  EXPECT_EQ(parse_backend("des"), Backend::kSim);
  EXPECT_EQ(parse_backend("RT"), Backend::kRt);
  EXPECT_EQ(parse_backend("real"), Backend::kRt);
  EXPECT_FALSE(parse_backend("cuda").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
}

TEST(ExecutorConfigDefaults, SeedIsUnifiedAcrossEntryPoints) {
  // The legacy entry points defaulted to different seeds (rt 7, sim 42);
  // the redesign pins all three to the single documented kDefaultSeed.
  EXPECT_EQ(ExecutorConfig{}.seed, kDefaultSeed);
  EXPECT_EQ(rt::RtOptions{}.seed, kDefaultSeed);
  EXPECT_EQ(sim::SimOptions{}.seed, kDefaultSeed);
}

TEST_F(ExecutorTest, SameDagCompletesOnBothBackendsWithConsistentShapes) {
  const Dag dag = small_dag();
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    ExecutorConfig config;
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_, config);
    ASSERT_NE(exec, nullptr);
    EXPECT_EQ(exec->backend(), backend);
    EXPECT_EQ(exec->policy_kind(), Policy::kDamC);
    EXPECT_EQ(exec->num_ranks(), 1);
    EXPECT_EQ(exec->topology().num_cores(), topo_.num_cores());

    const RunResult r = exec->run(dag);
    EXPECT_GT(r.makespan_s, 0.0);
    EXPECT_EQ(r.tasks, dag.num_nodes());
    EXPECT_DOUBLE_EQ(r.tasks_per_s, dag.num_nodes() / r.makespan_s);
    EXPECT_EQ(r.backend, backend);
    EXPECT_EQ(r.policy, Policy::kDamC);

    // Stats snapshot shape is identical across backends.
    ASSERT_EQ(r.stats.size(), 1u);
    const StatsSnapshot& s = r.stats[0];
    EXPECT_EQ(s.tasks_total, dag.num_nodes());
    EXPECT_EQ(s.tasks_high + s.tasks_low, s.tasks_total);
    EXPECT_GT(s.tasks_high, 0);  // the generator marks one critical per layer
    ASSERT_EQ(s.busy_s.size(), static_cast<std::size_t>(topo_.num_cores()));
    EXPECT_GT(s.total_busy_s, 0.0);
    double busy_sum = 0.0;
    for (double b : s.busy_s) busy_sum += b;
    EXPECT_NEAR(busy_sum, s.total_busy_s, 1e-12);
    // Every distribution share refers to a valid place and they sum to 1.
    double share_sum = 0.0;
    for (const auto& [place, share] : s.high_distribution) {
      EXPECT_TRUE(topo_.is_valid_place(place));
      share_sum += share;
    }
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
  }
}

TEST_F(ExecutorTest, StatePersistsAcrossRunsAndClockIsMonotone) {
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_);
    double prev = exec->now();
    std::int64_t total = 0;
    for (int i = 0; i < 3; ++i) {
      const Dag dag = small_dag(2, 20);
      const RunResult r = exec->run(dag);
      total += r.tasks;
      EXPECT_EQ(r.stats[0].tasks_total, total);  // stats accumulate
      EXPECT_GE(exec->now(), prev);
      prev = exec->now();
    }
    // The PTT learned something (DAM-C explores every place eventually).
    std::uint64_t samples = 0;
    const Ptt& ptt = exec->ptt().table(ids_.matmul);
    for (int pid = 0; pid < topo_.num_places(); ++pid) samples += ptt.samples(pid);
    EXPECT_GT(samples, 0u);
  }
}

TEST_F(ExecutorTest, ScenarioFlowsThroughConfigOnBothBackends) {
  // A scenario passed via ExecutorConfig must reach the engine: under a
  // core-0 co-runner, DAM-C steers criticals off core 0 on the sim backend
  // (the rt backend is too timing-noisy on shared CI to assert placement).
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  ExecutorConfig config;
  config.scenario = &scenario;
  auto exec = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                            config);
  const RunResult r = exec->run(small_dag(2, 400));
  double on_core0 = 0.0;
  for (const auto& [place, share] : r.stats[0].high_distribution)
    if (place.leader == 0) on_core0 += share;
  EXPECT_LT(on_core0, 0.2);
}

TEST_F(ExecutorTest, SimBackendIsDeterministicThroughFacade) {
  auto run_once = [&] {
    ExecutorConfig config;
    config.seed = 99;
    auto exec = make_executor(Backend::kSim, topo_, Policy::kDamP, registry_,
                              config);
    return exec->run(small_dag(4, 200)).makespan_s;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_F(ExecutorTest, TimelineIsRecordedBySimBackendOnly) {
  Timeline timeline;
  ExecutorConfig config;
  config.timeline = &timeline;

  auto sim = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                           config);
  const RunResult rs = sim->run(small_dag(2, 20));
  EXPECT_EQ(rs.timeline, &timeline);
  EXPECT_GT(timeline.size(), 0u);

  // The rt engine records no timeline yet; the result must not dangle.
  auto rt = make_executor(Backend::kRt, topo_, Policy::kDamC, registry_,
                          config);
  const RunResult rr = rt->run(small_dag(2, 20));
  EXPECT_EQ(rr.timeline, nullptr);
}

TEST_F(ExecutorTest, MultiRankFactoryBuildsSimAndRejectsRt) {
  const std::vector<sim::RankSpec> ranks(2, sim::RankSpec{&topo_, nullptr});

  auto exec = make_executor(Backend::kSim, ranks, Policy::kDamC, registry_);
  EXPECT_EQ(exec->num_ranks(), 2);

  Dag dag;
  const NodeId a = dag.add_node(ids_.matmul, Priority::kLow, {.p0 = 16});
  const NodeId b = dag.add_node(ids_.matmul, Priority::kLow, {.p0 = 16});
  dag.node(b).rank = 1;
  dag.add_edge(a, b, /*delay_s=*/1e-5);
  const RunResult r = exec->run(dag);
  ASSERT_EQ(r.stats.size(), 2u);
  EXPECT_EQ(r.stats[0].tasks_total, 1);
  EXPECT_EQ(r.stats[1].tasks_total, 1);

  EXPECT_THROW(make_executor(Backend::kRt, ranks, Policy::kDamC, registry_),
               PreconditionError);
  EXPECT_THROW(make_executor(Backend::kSim, {}, Policy::kDamC, registry_),
               PreconditionError);
}

TEST_F(ExecutorTest, ConfigScenarioIsFallbackForScenarioLessRanks) {
  // A driver migrating from the single-topology overload must not lose its
  // scenario: ranks without their own scenario inherit config.scenario.
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  const std::vector<sim::RankSpec> ranks{{&topo_, nullptr}};
  ExecutorConfig config;
  config.scenario = &scenario;
  auto exec = make_executor(Backend::kSim, ranks, Policy::kDamC, registry_,
                            config);
  const RunResult r = exec->run(small_dag(2, 400));
  double on_core0 = 0.0;
  for (const auto& [place, share] : r.stats[0].high_distribution)
    if (place.leader == 0) on_core0 += share;
  EXPECT_LT(on_core0, 0.2) << "config.scenario did not reach the rank";
}

TEST_F(ExecutorTest, SingleRankSpecScenarioReachesRtBackend) {
  // The rank-spec overload forwards the spec's scenario to the rt engine;
  // construction alone must succeed and expose the right topology.
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  const std::vector<sim::RankSpec> ranks{{&topo_, &scenario}};
  auto exec = make_executor(Backend::kRt, ranks, Policy::kDamC, registry_);
  EXPECT_EQ(exec->backend(), Backend::kRt);
  EXPECT_EQ(exec->num_ranks(), 1);
  const RunResult r = exec->run(small_dag(2, 20));
  EXPECT_EQ(r.stats[0].tasks_total, 20);
}

}  // namespace
}  // namespace das
