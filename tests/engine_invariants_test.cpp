// Engine-level invariants, including regression guards for bugs found while
// calibrating the figures:
//   - a core can never be double-booked (its busy time is bounded by the
//     makespan) — regression for the duplicate-wake-event bug;
//   - the PTT learns intrinsic task durations, not queue-skewed assembly
//     spans — regression for the poisoned-wide-places bug;
//   - work conservation across engines and policies (including dHEFT).

#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

class EngineInvariants : public ::testing::Test {
 protected:
  EngineInvariants() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }
  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(EngineInvariants, PerCoreBusyNeverExceedsMakespan) {
  // Regression: a duplicated wake event once let one core run two
  // participations concurrently, inflating its busy time past the makespan.
  for (Policy p : {Policy::kRws, Policy::kFa, Policy::kDamC, Policy::kDamP,
                   Policy::kDheft}) {
    Dag dag = workloads::make_synthetic_dag(
        workloads::paper_matmul_spec(ids_.matmul, 3, 0.02));
    SpeedScenario scenario(topo_);
    scenario.add_cpu_corunner(0);
    sim::SimEngine eng(topo_, p, registry_, {}, &scenario);
    const double makespan = eng.run(dag);
    for (int c = 0; c < topo_.num_cores(); ++c) {
      EXPECT_LE(eng.stats().busy_s(c), makespan * 1.0001)
          << policy_name(p) << " double-booked core " << c;
    }
    // And the cores did real work: total busy within (0, cores x makespan].
    EXPECT_GT(eng.stats().total_busy_s(), 0.0);
    EXPECT_LE(eng.stats().total_busy_s(), topo_.num_cores() * makespan * 1.0001);
  }
}

TEST_F(EngineInvariants, PttLearnsIntrinsicDurationNotQueueSkew) {
  // Regression: wide places once learned assembly spans including the time
  // participants spent finishing OTHER work, making molding look terrible.
  // With noise off, the learned value for (2,4) must approximate the cost
  // model's width-4 prediction, not a multiple of it.
  sim::SimOptions opts;
  opts.noise = false;
  Dag dag = workloads::make_synthetic_dag(
      workloads::paper_matmul_spec(ids_.matmul, 6, 0.05));
  sim::SimEngine eng(topo_, Policy::kRwsmC, registry_, opts);
  eng.run(dag);

  const Ptt& ptt = eng.ptt().table(ids_.matmul);
  const ExecutionPlace wide{2, 4};
  if (ptt.samples(wide) > 0) {
    CostQuery q;
    q.place = wide;
    q.core = 2;
    q.speed = topo_.cluster(1).base_speed;
    q.bw_share = 1.0;
    q.cluster = &topo_.cluster(1);
    TaskParams params;
    params.p0 = 64;
    const double predicted = registry_.info(ids_.matmul).cost(params, q);
    EXPECT_LT(ptt.value(wide), predicted * 1.5)
        << "PTT value contaminated by arrival skew";
    EXPECT_GT(ptt.value(wide), predicted * 0.5);
  }
}

TEST_F(EngineInvariants, StealExemptTasksRunExactlyWherePlaced) {
  // Under heavy load with a fixed seed, every high-priority execution place
  // recorded in the stats must be one the policy could have produced
  // (denver round-robin for FA: exactly {(0,1), (1,1)}).
  Dag dag = workloads::make_synthetic_dag(
      workloads::paper_matmul_spec(ids_.matmul, 6, 0.05));
  sim::SimEngine eng(topo_, Policy::kFa, registry_);
  eng.run(dag);
  for (const auto& [place, share] : eng.stats().distribution(Priority::kHigh)) {
    EXPECT_TRUE((place == ExecutionPlace{0, 1}) || (place == ExecutionPlace{1, 1}))
        << "unexpected high-priority place " << to_string(place);
  }
}

TEST_F(EngineInvariants, DheftIsDeterministic) {
  auto run_once = [&] {
    Dag dag = workloads::make_synthetic_dag(
        workloads::paper_matmul_spec(ids_.matmul, 4, 0.02));
    sim::SimOptions opts;
    opts.seed = 5;
    sim::SimEngine eng(topo_, Policy::kDheft, registry_, opts);
    return eng.run(dag);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_F(EngineInvariants, RealRuntimeBusyBoundedByWallTime) {
  Dag dag;
  for (int i = 0; i < 60; ++i)
    dag.add_node(ids_.matmul, Priority::kLow, {},
                 [](const ExecContext&) { busy_wait_ns(500000); });
  rt::Runtime rt(topo_, Policy::kRws, registry_);
  const double wall = rt.run(dag);
  for (int c = 0; c < topo_.num_cores(); ++c) {
    EXPECT_LE(rt.stats().busy_s(c), wall * 1.10)  // 10% timer slack
        << "core " << c << " busy exceeds wall time";
  }
}

TEST_F(EngineInvariants, MultiRunVirtualClockIsMonotone) {
  sim::SimEngine eng(topo_, Policy::kDamC, registry_);
  double prev = eng.now();
  for (int i = 0; i < 5; ++i) {
    Dag dag = workloads::make_synthetic_dag(
        workloads::paper_matmul_spec(ids_.matmul, 2, 0.005));
    eng.run(dag);
    EXPECT_GT(eng.now(), prev);
    prev = eng.now();
  }
}

}  // namespace
}  // namespace das
