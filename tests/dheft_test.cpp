// Tests for the dHEFT baseline policy (earliest-finish placement with
// runtime-discovered execution times).

#include <gtest/gtest.h>

#include <map>

#include "core/policy.hpp"
#include "kernels/registry.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

constexpr TaskTypeId kT = 0;

class DheftTest : public ::testing::Test {
 protected:
  DheftTest() : topo_(Topology::tx2()), ptt_(topo_, 1) {}
  Topology topo_;
  PttStore ptt_;
};

TEST_F(DheftTest, TraitsAndName) {
  const PolicyTraits tr = policy_traits(Policy::kDheft);
  EXPECT_STREQ(tr.asymmetry, "Dynamic");
  EXPECT_STREQ(tr.moldability, "No");
  EXPECT_STREQ(tr.priority_placement, "Earliest Finish");
  EXPECT_TRUE(tr.uses_ptt);
  EXPECT_FALSE(tr.priority_aware);
  EXPECT_EQ(policy_from_name("dHEFT"), Policy::kDheft);
  // The paper's Table 1 set stays at seven — dHEFT is a baseline.
  EXPECT_EQ(all_policies().size(), 7u);
  for (Policy p : all_policies()) EXPECT_NE(p, Policy::kDheft);
}

TEST_F(DheftTest, PlacesEveryPriorityCentrally) {
  PolicyEngine eng(Policy::kDheft, topo_, &ptt_);
  for (Priority prio : {Priority::kLow, Priority::kHigh}) {
    const WakeDecision wd = eng.on_ready(kT, prio, 3);
    EXPECT_FALSE(wd.stealable);
    ASSERT_TRUE(wd.has_fixed_place);
    EXPECT_EQ(wd.fixed_place.width, 1);
  }
}

TEST_F(DheftTest, ReservedWorkSpreadsBurstsAcrossCores) {
  PolicyEngine eng(Policy::kDheft, topo_, &ptt_);
  // Identical estimates everywhere: a burst of placements must fan out over
  // distinct cores because each placement reserves work on its target.
  ptt_.table(kT).fill(1e-3);
  std::map<int, int> per_core;
  for (int i = 0; i < topo_.num_cores(); ++i) {
    const WakeDecision wd = eng.on_ready(kT, Priority::kLow, 0);
    per_core[wd.fixed_place.leader]++;
  }
  EXPECT_EQ(static_cast<int>(per_core.size()), topo_.num_cores());
}

TEST_F(DheftTest, PrefersTheFastestDiscoveredCore) {
  PolicyEngine eng(Policy::kDheft, topo_, &ptt_);
  ptt_.table(kT).fill(1e-3);
  for (int i = 0; i < 64; ++i)
    ptt_.table(kT).update(ExecutionPlace{1, 1}, 1e-4);  // core 1 is 10x faster
  // First placement goes to core 1 (smallest finish = 0 reserved + 1e-4).
  const WakeDecision wd = eng.on_ready(kT, Priority::kLow, 4);
  EXPECT_EQ(wd.fixed_place.leader, 1);
  // And the reservation drains on completion, so core 1 stays attractive.
  eng.record_sample(kT, ExecutionPlace{1, 1}, 1e-4);
  const WakeDecision wd2 = eng.on_ready(kT, Priority::kLow, 4);
  EXPECT_EQ(wd2.fixed_place.leader, 1);
}

TEST_F(DheftTest, EndToEndBeatsRwsUnderInterference) {
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);

  auto throughput = [&](Policy p) {
    Dag dag = workloads::make_synthetic_dag(
        workloads::paper_matmul_spec(ids.matmul, 2, 0.05));
    sim::SimEngine eng(topo_, p, registry, {}, &scenario);
    return dag.num_nodes() / eng.run(dag);
  };
  const double dheft = throughput(Policy::kDheft);
  const double rws = throughput(Policy::kRws);
  const double damc = throughput(Policy::kDamC);
  // dHEFT discovers the asymmetry (beats RWS) but cannot mold and pays
  // central-placement queueing, so the paper's scheduler stays ahead.
  EXPECT_GT(dheft, rws);
  EXPECT_GT(damc, 0.95 * dheft);
}

TEST_F(DheftTest, RunsOnTheRealRuntime) {
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  workloads::SyntheticDagSpec spec;
  spec.type = ids.matmul;
  spec.parallelism = 3;
  spec.total_tasks = 120;
  spec.work = [](const ExecContext&) { busy_wait_ns(20000); };
  Dag dag = workloads::make_synthetic_dag(spec);
  rt::Runtime rt(topo_, Policy::kDheft, registry);
  rt.run(dag);
  EXPECT_EQ(rt.stats().tasks_total(), 120);
}

}  // namespace
}  // namespace das
