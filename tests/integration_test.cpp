// Integration tests: miniature versions of the paper's experiments asserting
// the *qualitative* results the evaluation section reports — dynamic
// asymmetry schedulers beat random work stealing and fixed-asymmetry
// scheduling under interference (Fig. 4), adapt to DVFS (Fig. 7), steer
// critical tasks away from perturbed cores (Fig. 5), and the cross-engine
// agreement between the DES and the real-thread runtime.

#include <gtest/gtest.h>

#include <map>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "platform/affinity.hpp"
#include "workloads/heat.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  /// Throughput of `policy` under `scenario` on `backend` (virtual tasks/s
  /// for kSim, wall tasks/s for kRt), through the Executor facade.
  double throughput(Backend backend, Policy policy,
                    const SpeedScenario* scenario,
                    const workloads::SyntheticDagSpec& spec,
                    std::uint64_t seed = kDefaultSeed) {
    Dag dag = workloads::make_synthetic_dag(spec);
    ExecutorConfig config;
    config.seed = seed;
    config.scenario = scenario;
    auto exec = make_executor(backend, topo_, policy, registry_, config);
    return exec->run(dag).tasks_per_s;
  }

  double sim_throughput(Policy policy, const SpeedScenario* scenario,
                        const workloads::SyntheticDagSpec& spec,
                        std::uint64_t seed = kDefaultSeed) {
    return throughput(Backend::kSim, policy, scenario, spec, seed);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(IntegrationTest, Fig4Shape_DynamicBeatsFixedBeatsRandomUnderInterference) {
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  const auto spec = workloads::paper_matmul_spec(ids_.matmul, 2, /*scale=*/0.1);

  std::map<Policy, double> tp;
  for (Policy p : all_policies()) tp[p] = sim_throughput(p, &scenario, spec);

  // The paper's ordering at low parallelism with a perturbed fast core:
  // dynamic schedulers on top, fixed-asymmetry in the middle, RWS last.
  EXPECT_GT(tp[Policy::kDamC], tp[Policy::kFa]);
  EXPECT_GT(tp[Policy::kDamP], tp[Policy::kFa]);
  EXPECT_GT(tp[Policy::kDa], tp[Policy::kFa]);
  EXPECT_GT(tp[Policy::kFa], tp[Policy::kRws]);
  // Headline: DAM-C well above RWS (paper: up to 3.5x at full scale).
  EXPECT_GT(tp[Policy::kDamC], 1.5 * tp[Policy::kRws]);
}

TEST_F(IntegrationTest, Fig4Shape_RwsCatchesUpAtHigherParallelism) {
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  const double rws_p2 = sim_throughput(
      Policy::kRws, &scenario, workloads::paper_matmul_spec(ids_.matmul, 2, 0.05));
  const double rws_p6 = sim_throughput(
      Policy::kRws, &scenario, workloads::paper_matmul_spec(ids_.matmul, 6, 0.05));
  // RWS throughput grows roughly with DAG parallelism (paper Fig. 4a).
  EXPECT_GT(rws_p6, 1.8 * rws_p2);

  const double dam_p2 = sim_throughput(
      Policy::kDamC, &scenario, workloads::paper_matmul_spec(ids_.matmul, 2, 0.05));
  const double dam_p6 = sim_throughput(
      Policy::kDamC, &scenario, workloads::paper_matmul_spec(ids_.matmul, 6, 0.05));
  // DAM-C is already near its peak at low parallelism: the relative gain
  // from P=2 to P=6 is far smaller than for RWS.
  EXPECT_LT(dam_p6 / dam_p2, rws_p6 / rws_p2);
}

TEST_F(IntegrationTest, Fig5Shape_DynamicSchedulersEvacuatePerturbedCore) {
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  const auto spec = workloads::paper_matmul_spec(ids_.matmul, 2, 0.1);

  for (Policy p : {Policy::kDa, Policy::kDamC, Policy::kDamP}) {
    Dag dag = workloads::make_synthetic_dag(spec);
    ExecutorConfig config;
    config.scenario = &scenario;
    auto eng = make_executor(Backend::kSim, topo_, p, registry_, config);
    const RunResult r = eng->run(dag);
    // Fraction of high-priority tasks on the perturbed core 0 (any width).
    double on_core0 = 0.0, on_core1 = 0.0;
    for (const auto& [place, share] : r.stats[0].high_distribution) {
      if (place.leader == 0) on_core0 += share;
      if (place.leader == 1) on_core1 += share;
    }
    EXPECT_LT(on_core0, 0.15) << policy_name(p) << " kept criticals on the"
                                 " interfered core (paper Fig. 5: ~2%)";
    EXPECT_GT(on_core1, 0.5) << policy_name(p) << " should favour the clean"
                                " Denver core (paper Fig. 5: >= 92%)";
  }

  // FA, by contrast, keeps hammering core 0 with half the criticals.
  Dag dag = workloads::make_synthetic_dag(spec);
  ExecutorConfig config;
  config.scenario = &scenario;
  auto eng = make_executor(Backend::kSim, topo_, Policy::kFa, registry_, config);
  const RunResult r = eng->run(dag);
  double fa_core0 = 0.0;
  for (const auto& [place, share] : r.stats[0].high_distribution)
    if (place.leader == 0) fa_core0 += share;
  EXPECT_NEAR(fa_core0, 0.5, 0.02);
}

TEST_F(IntegrationTest, Fig6Shape_FaOverloadsPerturbedCoreRwsBalances) {
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);
  const auto spec = workloads::paper_matmul_spec(ids_.matmul, 2, 0.1);

  ExecutorConfig config;
  config.scenario = &scenario;
  Dag dag_fa = workloads::make_synthetic_dag(spec);
  const RunResult fa =
      make_executor(Backend::kSim, topo_, Policy::kFa, registry_, config)
          ->run(dag_fa);
  Dag dag_dam = workloads::make_synthetic_dag(spec);
  const RunResult dam =
      make_executor(Backend::kSim, topo_, Policy::kDamC, registry_, config)
          ->run(dag_dam);
  // FA's core-0 busy time dominates its other denver core (it executes the
  // same number of criticals at half speed); DAM-C mostly avoids core 0.
  EXPECT_GT(fa.stats[0].busy_s[0], 1.3 * dam.stats[0].busy_s[0]);
}

TEST_F(IntegrationTest, Fig7Shape_DynamicSchedulersRideThroughDvfs) {
  SpeedScenario scenario(topo_);
  // The paper's square wave is 5 s + 5 s; this scaled-down workload runs
  // ~0.8 s of virtual time, so the period is scaled too (the wave SHAPE is
  // what matters — the run must span full hi/lo cycles).
  scenario.add_dvfs(DvfsSchedule{.cluster = 0, .period_s = 1.0, .duty_hi = 0.5,
                                 .hi = 1.0, .lo = 345.0 / 2035.0});
  const auto spec = workloads::paper_copy_spec(ids_.copy, 3, 0.15);

  std::map<Policy, double> tp;
  for (Policy p : {Policy::kRws, Policy::kRwsmC, Policy::kFa, Policy::kDamC})
    tp[p] = sim_throughput(p, &scenario, spec);

  EXPECT_GT(tp[Policy::kDamC], tp[Policy::kRws]);
  EXPECT_GT(tp[Policy::kDamC], tp[Policy::kRwsmC]);
  EXPECT_GT(tp[Policy::kDamC], tp[Policy::kFa]);
}

TEST_F(IntegrationTest, Fig10Shape_DistributedHeatPrefersMoldableSchedulers) {
  // Large bands (millisecond tasks) and enough iterations to amortise the
  // PTT's explore-every-place start-up, as in the paper's minutes-long runs.
  workloads::HeatConfig cfg;
  cfg.rows = 2048;
  cfg.cols = 8192;
  cfg.ranks = 4;
  cfg.iterations = 40;
  cfg.tasks_per_rank = 8;

  const Topology node_topo = Topology::haswell20();
  SpeedScenario perturbed(node_topo);
  perturbed.add_interference(
      InterferenceEvent{.cores = {0, 1, 2, 3, 4}, .cpu_share = 0.5});

  std::map<Policy, double> tp;
  for (Policy p : {Policy::kRws, Policy::kRwsmC, Policy::kDa, Policy::kDamC}) {
    Dag dag = workloads::make_heat_sim_dag(cfg, ids_.heat_compute, ids_.comm);
    std::vector<sim::RankSpec> ranks(4, sim::RankSpec{&node_topo, nullptr});
    ranks[0].scenario = &perturbed;  // interference on node 0, socket 0
    auto eng = make_executor(Backend::kSim, ranks, p, registry_);
    tp[p] = eng->run(dag).tasks_per_s;
  }
  // The paper's headline: DAM-C +76% over RWS. Moldability is the dominant
  // effect in our substrate too.
  EXPECT_GT(tp[Policy::kDamC], 1.3 * tp[Policy::kRws]);
  EXPECT_GT(tp[Policy::kRwsmC], 1.2 * tp[Policy::kRws]);
  // DA (criticality steering without moldability) stays in RWS's
  // neighbourhood here — see EXPERIMENTS.md for the documented deviation
  // from the paper's +52%.
  EXPECT_GT(tp[Policy::kDa], 0.8 * tp[Policy::kRws]);
}

TEST_F(IntegrationTest, CrossEngine_RealRuntimeAgreesWithDesOrdering) {
  // Small matmul DAG with emulated interference on core 0: both backends,
  // driven through the SAME facade call, must rank DAM-C above RWS.
  // (Absolute numbers differ: the DES charges model costs, the runtime
  // executes real kernels plus the throttle.)
  if (allowed_cpu_count() < topo_.num_cores()) {
    GTEST_SKIP() << "only " << allowed_cpu_count() << " CPUs for "
                 << topo_.num_cores() << " workers — wall-clock ordering "
                 << "is noise under oversubscription";
  }
  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);

  workloads::SyntheticDagSpec spec;
  spec.type = ids_.matmul;
  spec.parallelism = 2;
  spec.total_tasks = 400;
  spec.params.p0 = 48;

  const double sim_rws = sim_throughput(Policy::kRws, &scenario, spec);
  const double sim_dam = sim_throughput(Policy::kDamC, &scenario, spec);
  const double rt_rws = throughput(Backend::kRt, Policy::kRws, &scenario, spec);
  const double rt_dam = throughput(Backend::kRt, Policy::kDamC, &scenario, spec);

  EXPECT_GT(sim_dam, sim_rws);
  EXPECT_GT(rt_dam, rt_rws);
}

}  // namespace
}  // namespace das
