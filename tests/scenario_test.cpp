// Tests for the declarative scenario subsystem (src/scenario): every catalog
// entry round-trips through JSON text and builds the same SpeedScenario,
// malformed specs produce catchable diagnostics (and exit code 2 through the
// CLI layer), cluster references resolve against the concrete topology, and
// a catalog scenario reaches both engines through
// ExecutorConfig::scenario_spec (sim/rt parity).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "scenario/scenario.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

using scenario::ScenarioError;
using scenario::ScenarioSpec;

// Samples both scenarios' speed and bandwidth surfaces on a fixed time grid.
void expect_same_surface(const SpeedScenario& a, const SpeedScenario& b,
                         const Topology& topo) {
  for (int core = 0; core < topo.num_cores(); ++core) {
    for (int tick = 0; tick <= 400; ++tick) {
      const double t = tick * 0.1;  // 0..40 s covers every catalog horizon
      ASSERT_DOUBLE_EQ(a.speed(core, t), b.speed(core, t))
          << "core " << core << " t " << t;
    }
  }
  for (int c = 0; c < topo.num_clusters(); ++c)
    for (int tick = 0; tick <= 400; ++tick)
      ASSERT_DOUBLE_EQ(a.bandwidth_share(c, tick * 0.1),
                       b.bandwidth_share(c, tick * 0.1));
}

TEST(ScenarioCatalog, HasTheDocumentedEntries) {
  const auto& names = scenario::catalog_names();
  const std::vector<std::string> expected = {
      "clean",     "dvfs-wave",    "interference-burst", "ramp-down",
      "random-churn", "phase-flip", "fail-stop",         "straggler-tail"};
  EXPECT_EQ(names, expected);
  for (const std::string& n : names)
    EXPECT_TRUE(scenario::find_catalog(n).has_value()) << n;
  EXPECT_FALSE(scenario::find_catalog("no-such").has_value());
}

TEST(ScenarioCatalog, EveryEntryRoundTripsThroughJsonText) {
  const Topology topo = Topology::tx2();
  for (const std::string& name : scenario::catalog_names()) {
    SCOPED_TRACE(name);
    const ScenarioSpec spec = *scenario::find_catalog(name);

    // Spec -> JSON text -> spec is the identity...
    const std::string text = scenario::to_json(spec).dump(2);
    const ScenarioSpec back = scenario::parse(text, name);
    EXPECT_EQ(back, spec);

    // ...and both specs build the same speed/bandwidth surface.
    expect_same_surface(scenario::build(spec, topo),
                        scenario::build(back, topo), topo);
  }
}

TEST(ScenarioCatalog, CleanBuildsAnEmptyScenario) {
  const Topology topo = Topology::tx2();
  const SpeedScenario sc =
      scenario::build(*scenario::find_catalog("clean"), topo);
  EXPECT_TRUE(sc.empty());
  EXPECT_DOUBLE_EQ(sc.speed(0, 3.0), topo.max_base_speed());
}

TEST(ScenarioCatalog, EntriesActuallyPerturbTheMachine) {
  const Topology topo = Topology::tx2();
  for (const std::string& name : scenario::catalog_names()) {
    if (name == "clean") continue;
    SCOPED_TRACE(name);
    const ScenarioSpec spec = *scenario::find_catalog(name);
    if (spec.has_engine_faults()) {
      // Fail/freeze entries perturb the ENGINES, not the speed surface:
      // their plan must resolve to at least one concrete fault event.
      EXPECT_FALSE(scenario::resolve_faults(spec, topo).empty());
      continue;
    }
    const SpeedScenario sc = scenario::build(spec, topo);
    // Some core is slowed at some grid point.
    bool perturbed = false;
    for (int core = 0; core < topo.num_cores() && !perturbed; ++core)
      for (int tick = 0; tick <= 400 && !perturbed; ++tick)
        perturbed = sc.speed(core, tick * 0.1) <
                    topo.cluster_of_core(core).base_speed;
    EXPECT_TRUE(perturbed);
  }
}

TEST(ScenarioCatalog, RandomChurnIsDeterministicInSeedAndTopology) {
  const Topology topo = Topology::tx2();
  ScenarioSpec spec = *scenario::find_catalog("random-churn");
  expect_same_surface(scenario::build(spec, topo), scenario::build(spec, topo),
                      topo);
  // A different seed draws a different condition.
  spec.churn[0].seed += 1;
  const SpeedScenario other = scenario::build(spec, topo);
  const SpeedScenario base =
      scenario::build(*scenario::find_catalog("random-churn"), topo);
  bool differs = false;
  for (int core = 0; core < topo.num_cores() && !differs; ++core)
    for (int tick = 0; tick <= 400 && !differs; ++tick)
      differs = base.speed(core, tick * 0.1) != other.speed(core, tick * 0.1);
  EXPECT_TRUE(differs);
}

TEST(ScenarioSymbolic, FastestClusterResolvesPerTopology) {
  // dvfs-wave says "fastest": on the TX2 that is the Denver cluster
  // (cores 0-1); on a symmetric machine it falls back to cluster 0.
  const ScenarioSpec spec = *scenario::find_catalog("dvfs-wave");
  const Topology tx2 = Topology::tx2();
  const SpeedScenario sc = scenario::build(spec, tx2);
  ASSERT_EQ(sc.dvfs_schedules().size(), 1u);
  EXPECT_EQ(sc.dvfs_schedules()[0].cluster, tx2.fastest_cluster());

  const Topology sym = Topology::symmetric(2, 4);
  EXPECT_EQ(scenario::build(spec, sym).dvfs_schedules()[0].cluster, 0);
}

TEST(ScenarioParse, FileFormatWithClusterReferencesAndComments) {
  const ScenarioSpec spec = scenario::parse(R"({
    // a hand-written condition
    "name": "mixed",
    "dvfs": [{"cluster": "fastest", "period_s": 2.0}],
    "interference": [
      {"cores": "cluster:1", "t_start": 1.0, "t_end": 4.0, "cpu_share": 0.25},
      {"cores": [0], "cpu_share": 0.5}
    ],
    "ramps": [{"cluster": 0, "t_end": 10.0, "steps": 2, "to": 0.5}],
    "churn": [{"seed": 7, "events": 3}]
  })");
  EXPECT_EQ(spec.name, "mixed");
  ASSERT_EQ(spec.dvfs.size(), 1u);
  EXPECT_EQ(spec.dvfs[0].cluster, scenario::kFastestCluster);
  EXPECT_DOUBLE_EQ(spec.dvfs[0].period_s, 2.0);
  ASSERT_EQ(spec.interference.size(), 2u);
  EXPECT_EQ(spec.interference[0].cluster, 1);
  EXPECT_TRUE(std::isinf(spec.interference[1].t_end));  // absent = forever

  const Topology topo = Topology::tx2();
  const SpeedScenario sc = scenario::build(spec, topo);
  // cluster:1 on the TX2 = the four A57 cores (2..5).
  EXPECT_LT(sc.speed(3, 2.0), topo.cluster(1).base_speed);
  EXPECT_DOUBLE_EQ(sc.speed(3, 5.0), topo.cluster(1).base_speed);
}

TEST(ScenarioParse, MalformedSpecsAreDiagnosed) {
  // Structural problems.
  EXPECT_THROW(scenario::parse("not json at all"), ScenarioError);
  EXPECT_THROW(scenario::parse("[1,2]"), ScenarioError);          // not an object
  EXPECT_THROW(scenario::parse(R"({"dvfs": {}})"), ScenarioError);  // not an array
  // Unknown keys are typos, not extensions.
  EXPECT_THROW(scenario::parse(R"({"dvfss": []})"), ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"dvfs": [{"perod_s": 5}]})"), ScenarioError);
  // Range violations.
  EXPECT_THROW(scenario::parse(R"({"dvfs": [{"period_s": 0}]})"), ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"dvfs": [{"duty_hi": 1.5}]})"), ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"interference": [{"cores": [0], "cpu_share": 0}]})"),
               ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"interference": [{"cores": [0], "t_start": 5, "t_end": 1}]})"),
               ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"interference": [{"cpu_share": 0.5}]})"),
               ScenarioError);  // no victims
  EXPECT_THROW(scenario::parse(R"({"ramps": [{"steps": 0}]})"), ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"churn": [{"min_share": 0.9, "max_share": 0.1}]})"),
               ScenarioError);
  // Bad cluster references.
  EXPECT_THROW(scenario::parse(R"({"dvfs": [{"cluster": "slowest"}]})"),
               ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"interference": [{"cores": "cluster:x"}]})"),
               ScenarioError);
}

TEST(ScenarioParse, DiagnosticsNameTheOffendingEntry) {
  try {
    scenario::parse(R"({"ramps": [{}, {"steps": -1}]})", "bad.json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.json: ramps[1]"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioBuild, TopologyMismatchesAreDiagnosedNotAborted) {
  const Topology small = Topology::symmetric(1, 2);  // 1 cluster, 2 cores
  // phase-flip needs two clusters.
  EXPECT_THROW(scenario::build(*scenario::find_catalog("phase-flip"), small),
               ScenarioError);
  // Core id beyond the machine.
  ScenarioSpec spec;
  spec.interference.push_back({.cores = {7}});
  EXPECT_THROW(scenario::build(spec, small), ScenarioError);
  // Cluster id beyond the machine.
  ScenarioSpec ramp;
  ramp.ramps.push_back({.cluster = 3});
  EXPECT_THROW(scenario::build(ramp, small), ScenarioError);
}

TEST(ScenarioFaults, ParseRoundTripAndStrictErrors) {
  const ScenarioSpec spec = scenario::parse(R"({
    "faults": [
      {"kind": "fail", "fraction": 0.25, "t": 1.0},
      {"kind": "freeze", "cores": [1, 2], "t": 0.5, "duration_s": 2.0},
      {"kind": "straggler", "cores": "cluster:fastest", "t": 0.25,
       "slowdown": 0.1}
    ]})");
  ASSERT_EQ(spec.faults.size(), 3u);
  EXPECT_TRUE(spec.has_engine_faults());
  EXPECT_EQ(spec.faults[0].fraction, 0.25);
  EXPECT_EQ(spec.faults[1].kind, scenario::FaultSpec::Kind::kFreeze);
  EXPECT_EQ(spec.faults[2].cluster, scenario::kFastestCluster);
  // Spec -> JSON text -> spec is the identity for every victim form.
  EXPECT_EQ(scenario::parse(scenario::to_json(spec).dump(2)), spec);

  // The strict contract: unknown keys, bad kinds, zero or ambiguous victim
  // forms, and out-of-range constants are all diagnosed.
  EXPECT_THROW(scenario::parse(R"({"faults": [{"knd": "fail"}]})"),
               ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"faults": [{"kind": "explode"}]})"),
               ScenarioError);
  EXPECT_THROW(scenario::parse(R"({"faults": [{"kind": "fail"}]})"),
               ScenarioError);  // no victims
  EXPECT_THROW(scenario::parse(
                   R"({"faults": [{"kind": "fail", "cores": [1], "fraction": 0.5}]})"),
               ScenarioError);  // two victim forms
  EXPECT_THROW(scenario::parse(
                   R"({"faults": [{"kind": "fail", "fraction": 1.5}]})"),
               ScenarioError);
  EXPECT_THROW(scenario::parse(
                   R"({"faults": [{"kind": "fail", "cores": [0], "t": -1}]})"),
               ScenarioError);
  EXPECT_THROW(
      scenario::parse(
          R"({"faults": [{"kind": "freeze", "cores": [0], "duration_s": 0}]})"),
      ScenarioError);
  EXPECT_THROW(
      scenario::parse(
          R"({"faults": [{"kind": "straggler", "cores": [0], "slowdown": 1.5}]})"),
      ScenarioError);
}

TEST(ScenarioFaults, ResolvedPlansAreConcreteSortedAndGuardSurvivors) {
  const Topology topo = Topology::tx2();  // 2 Denver + 4 A57 = 6 cores
  ScenarioSpec spec;
  scenario::FaultSpec fail;
  fail.kind = scenario::FaultSpec::Kind::kFail;
  fail.fraction = 0.25;
  fail.t_s = 1.0;
  spec.faults.push_back(fail);
  scenario::FaultSpec freeze;
  freeze.kind = scenario::FaultSpec::Kind::kFreeze;
  freeze.cores = {1};
  freeze.t_s = 0.5;
  freeze.duration_s = 2.0;
  spec.faults.push_back(freeze);
  const FaultPlan plan = scenario::resolve_faults(spec, topo);
  // fraction 0.25 of 6 cores -> ceil(1.5) = 2 victims, highest-numbered
  // (cores 4, 5); events sorted by (t_s, core); kFail is forever.
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].core, 1);
  EXPECT_EQ(plan.events[0].kind, CoreFault::Kind::kFreeze);
  EXPECT_DOUBLE_EQ(plan.events[0].until_s, 2.5);
  EXPECT_EQ(plan.events[1].core, 4);
  EXPECT_EQ(plan.events[2].core, 5);
  EXPECT_EQ(plan.events[1].kind, CoreFault::Kind::kFail);
  EXPECT_TRUE(std::isinf(plan.events[1].until_s));

  // Stragglers expand into the SpeedScenario, never into the plan.
  EXPECT_TRUE(
      scenario::resolve_faults(*scenario::find_catalog("straggler-tail"), topo)
          .empty());
  EXPECT_FALSE(scenario::find_catalog("straggler-tail")->has_engine_faults());

  // A plan that fail-stops every core is rejected: the engines need a
  // survivor to run the reclaimed work.
  const Topology tiny = Topology::symmetric(1, 2);
  ScenarioSpec all;
  all.faults.push_back(
      {.kind = scenario::FaultSpec::Kind::kFail, .cores = {0, 1}});
  EXPECT_THROW(scenario::resolve_faults(all, tiny), ScenarioError);
  // ...and out-of-range cores are diagnosed against the concrete topology.
  ScenarioSpec oob;
  oob.faults.push_back(
      {.kind = scenario::FaultSpec::Kind::kFail, .cores = {7}});
  EXPECT_THROW(scenario::resolve_faults(oob, tiny), ScenarioError);
}

TEST(ScenarioLoad, ResolvesCatalogThenFileThenFails) {
  EXPECT_EQ(scenario::load("dvfs-wave").name, "dvfs-wave");

  const std::string path = ::testing::TempDir() + "scenario_test_spec.json";
  {
    std::ofstream out(path);
    out << R"({"interference": [{"cores": [0], "cpu_share": 0.5}]})";
  }
  const ScenarioSpec spec = scenario::load(path);
  EXPECT_EQ(spec.name, path);  // anonymous files are named by their path
  ASSERT_EQ(spec.interference.size(), 1u);
  std::remove(path.c_str());

  try {
    scenario::load("definitely-not-a-scenario");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    // The diagnostic teaches the catalog.
    EXPECT_NE(std::string(e.what()).find("dvfs-wave"), std::string::npos);
  }
}

TEST(ScenarioFlagDeathTest, MalformedSpecExitsWithCode2) {
  const char* argv_bad_name[] = {"prog", "--scenario=nope"};
  EXPECT_EXIT(
      {
        cli::Flags flags(2, const_cast<char* const*>(argv_bad_name));
        scenario_flag(flags);
      },
      ::testing::ExitedWithCode(2), "neither a catalog scenario");

  const std::string path = ::testing::TempDir() + "scenario_test_bad.json";
  {
    std::ofstream out(path);
    out << R"({"dvfs": [{"period_s": -1}]})";
  }
  const std::string flag = "--scenario=" + path;
  const char* argv_bad_file[] = {"prog", flag.c_str()};
  EXPECT_EXIT(
      {
        cli::Flags flags(2, const_cast<char* const*>(argv_bad_file));
        scenario_flag(flags);
      },
      ::testing::ExitedWithCode(2), "period_s");
  std::remove(path.c_str());
}

TEST(ScenarioFlagDeathTest, TopologyMismatchExitsWithCode2AtBuildTime) {
  // A spec can be well-formed yet reference what the machine lacks; the
  // CLI-facing build helper turns that into exit 2 too (drivers use it so
  // ScenarioError never escapes to std::terminate).
  const Topology small = Topology::symmetric(1, 2);
  ScenarioSpec spec;
  spec.dvfs.push_back({.cluster = 7});
  EXPECT_EXIT(build_scenario_or_exit(spec, small),
              ::testing::ExitedWithCode(2), "cluster 7");
}

// --- the facade path + sim/rt parity ----------------------------------------

class ScenarioExecutorTest : public ::testing::Test {
 protected:
  ScenarioExecutorTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag small_dag(int parallelism = 2, int tasks = 60) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = 16;  // small tiles: fast
    return workloads::make_synthetic_dag(spec);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(ScenarioExecutorTest, SpecRunsOnBothBackendsThroughExecutorConfig) {
  // Sim/rt parity: the same catalog scenario, passed as data, drives both
  // engines to completion with consistent result shapes.
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    ExecutorConfig config;
    config.scenario_spec = scenario::load("interference-burst");
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_, config);
    const RunResult r = exec->run(small_dag());
    EXPECT_GT(r.makespan_s, 0.0);
    EXPECT_EQ(r.tasks, 60);
    ASSERT_EQ(r.stats.size(), 1u);
    EXPECT_EQ(r.stats[0].tasks_total, 60);
  }
}

TEST_F(ScenarioExecutorTest, SpecPerturbsTheSimBackend) {
  // An always-on co-runner spec must slow the deterministic engine down
  // relative to the clean catalog entry.
  auto makespan = [&](const char* text) {
    ExecutorConfig config;
    config.scenario_spec = scenario::parse(text);
    auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_,
                              config);
    return exec->run(small_dag(2, 200)).makespan_s;
  };
  const double clean = makespan("{}");
  const double slowed = makespan(
      R"({"interference": [{"cores": [0, 1, 2, 3, 4, 5], "cpu_share": 0.3}]})");
  EXPECT_GT(slowed, clean * 1.5);
}

TEST_F(ScenarioExecutorTest, SettingBothScenarioAndSpecIsAnError) {
  SpeedScenario sc(topo_);
  sc.add_cpu_corunner(0);
  ExecutorConfig config;
  config.scenario = &sc;
  config.scenario_spec = scenario::load("clean");
  EXPECT_THROW(
      make_executor(Backend::kSim, topo_, Policy::kDamC, registry_, config),
      PreconditionError);
}

TEST_F(ScenarioExecutorTest, BadTopologyReferenceSurfacesFromMakeExecutor) {
  ExecutorConfig config;
  config.scenario_spec = scenario::parse(R"({"interference": [{"cores": [99]}]})");
  EXPECT_THROW(
      make_executor(Backend::kSim, topo_, Policy::kDamC, registry_, config),
      ScenarioError);
}

TEST_F(ScenarioExecutorTest, MultiRankSpecBuildsPerRankTopology) {
  // One spec, two ranks with different topologies: "fastest" must resolve
  // per rank, which only works if make_executor builds one scenario per
  // rank (owned by the executor — no dangling after this scope).
  const Topology tx2 = Topology::tx2();
  const Topology sym = Topology::symmetric(2, 4);
  std::vector<sim::RankSpec> ranks{{&tx2, nullptr}, {&sym, nullptr}};
  ExecutorConfig config;
  config.scenario_spec = scenario::load("dvfs-wave");
  auto exec = make_executor(Backend::kSim, ranks, Policy::kDamC, registry_,
                            config);
  EXPECT_EQ(exec->num_ranks(), 2);
  const RunResult r = exec->run(small_dag(2, 20));
  EXPECT_GT(r.makespan_s, 0.0);
}

}  // namespace
}  // namespace das
