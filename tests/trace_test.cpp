// Tests for ExecutionStats and the console reporters.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "trace/reporter.hpp"
#include "trace/stats.hpp"
#include "util/assert.hpp"

namespace das {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : topo_(Topology::tx2()), stats_(topo_, /*num_phases=*/3) {}
  Topology topo_;
  ExecutionStats stats_;
};

TEST_F(StatsTest, CountsByPriorityPlaceAndPhase) {
  const int p01 = topo_.place_id({0, 1});
  const int p24 = topo_.place_id({2, 4});
  stats_.record_task_at(Priority::kHigh, p01, 0.1, 0);
  stats_.record_task_at(Priority::kHigh, p01, 0.1, 1);
  stats_.record_task_at(Priority::kLow, p24, 0.2, 1);
  EXPECT_EQ(stats_.tasks_total(), 3);
  EXPECT_EQ(stats_.tasks_with_priority(Priority::kHigh), 2);
  EXPECT_EQ(stats_.tasks_at(Priority::kHigh, p01), 2);
  EXPECT_EQ(stats_.tasks_at_phase(Priority::kHigh, p01, 0), 1);
  EXPECT_EQ(stats_.tasks_at_phase(Priority::kHigh, p01, 2), 0);
  EXPECT_EQ(stats_.tasks_at(Priority::kLow, p24), 1);
}

TEST_F(StatsTest, PhaseClampingAndSetPhase) {
  stats_.set_phase(2);
  EXPECT_EQ(stats_.phase(), 2);
  stats_.record_task(Priority::kLow, 0, 0.0);
  EXPECT_EQ(stats_.tasks_at_phase(Priority::kLow, 0, 2), 1);
  // Out-of-range explicit phases clamp instead of crashing.
  stats_.record_task_at(Priority::kLow, 0, 0.0, 99);
  EXPECT_EQ(stats_.tasks_at_phase(Priority::kLow, 0, 2), 2);
  EXPECT_THROW(stats_.set_phase(3), PreconditionError);
}

TEST_F(StatsTest, BusyTimeAndThroughput) {
  stats_.record_busy(0, 1'500'000'000);
  stats_.record_busy(0, 500'000'000);
  stats_.record_busy(5, 1'000'000'000);
  EXPECT_DOUBLE_EQ(stats_.busy_s(0), 2.0);
  EXPECT_DOUBLE_EQ(stats_.busy_s(5), 1.0);
  EXPECT_DOUBLE_EQ(stats_.total_busy_s(), 3.0);
  stats_.record_task(Priority::kLow, 0, 0.1);
  stats_.record_task(Priority::kLow, 0, 0.1);
  stats_.set_elapsed(4.0);
  EXPECT_DOUBLE_EQ(stats_.throughput(), 0.5);
}

TEST_F(StatsTest, ThroughputZeroWithoutElapsed) {
  stats_.record_task(Priority::kLow, 0, 0.1);
  EXPECT_DOUBLE_EQ(stats_.throughput(), 0.0);
}

TEST_F(StatsTest, DistributionSortedAndNormalised) {
  const int p01 = topo_.place_id({0, 1});
  const int p11 = topo_.place_id({1, 1});
  for (int i = 0; i < 3; ++i) stats_.record_task(Priority::kHigh, p01, 0.0);
  stats_.record_task(Priority::kHigh, p11, 0.0);
  const auto dist = stats_.distribution(Priority::kHigh);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist[0].first, (ExecutionPlace{0, 1}));
  EXPECT_DOUBLE_EQ(dist[0].second, 0.75);
  EXPECT_DOUBLE_EQ(dist[1].second, 0.25);
  EXPECT_TRUE(stats_.distribution(Priority::kLow).empty());
}

TEST_F(StatsTest, ResetClearsEverything) {
  stats_.record_task(Priority::kHigh, 0, 1.0);
  stats_.record_busy(2, 100);
  stats_.set_elapsed(1.0);
  stats_.reset();
  EXPECT_EQ(stats_.tasks_total(), 0);
  EXPECT_DOUBLE_EQ(stats_.total_busy_s(), 0.0);
  EXPECT_DOUBLE_EQ(stats_.elapsed_s(), 0.0);
}

TEST_F(StatsTest, ConcurrentRecordingIsLossless) {
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        stats_.record_task(Priority::kLow, 0, 0.001);
        stats_.record_busy(1, 10);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats_.tasks_total(), static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(stats_.busy_s(1), kThreads * kIters * 10 * 1e-9);
}

TEST_F(StatsTest, ReportersRenderPlacesAndCores) {
  stats_.record_task(Priority::kHigh, topo_.place_id({2, 4}), 0.0);
  stats_.record_busy(3, 2'000'000'000);
  std::ostringstream os;
  print_priority_distribution(stats_, os, "dist");
  print_core_worktime(stats_, os, "work");
  const std::string s = os.str();
  EXPECT_NE(s.find("(C2,4)"), std::string::npos);
  EXPECT_NE(s.find("100.0%"), std::string::npos);
  EXPECT_NE(s.find("C3"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
}

}  // namespace
}  // namespace das
