// Unit tests for src/util: RNG determinism and distribution sanity, spinlock
// mutual exclusion, cache-line padding, busy-wait accuracy, table formatting.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/aligned.hpp"
#include "util/assert.hpp"
#include "util/ring_buffer.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/time.hpp"

namespace das {
namespace {

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, SplitMixExpandsDistinctWords) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

TEST(Spinlock, ProvidesMutualExclusion) {
  Spinlock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<Spinlock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(Spinlock, TryLockReflectsState) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Aligned, CachePaddedSeparatesNeighbours) {
  CachePadded<int> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1]);
  EXPECT_GE(b - a, kCacheLine);
  EXPECT_EQ(a % kCacheLine, 0u);
}

TEST(Aligned, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
}

TEST(Time, BusyWaitIsAccurateEnough) {
  const std::int64_t want = 2'000'000;  // 2 ms
  const std::int64_t t0 = now_ns();
  busy_wait_ns(want);
  const std::int64_t took = now_ns() - t0;
  EXPECT_GE(took, want);
  EXPECT_LT(took, want * 3);  // generous: CI machines stall
}

TEST(Time, BusyWaitZeroOrNegativeReturnsImmediately) {
  const std::int64_t t0 = now_ns();
  busy_wait_ns(0);
  busy_wait_ns(-100);
  EXPECT_LT(now_ns() - t0, 1'000'000);
}

TEST(Format, TableAlignsAndCounts) {
  TextTable t({"name", "value"});
  t.row().add("a").add(1.25, 2);
  t.row().add("long-name").add(std::int64_t{42});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
}

TEST(Format, CsvOutput) {
  TextTable t({"a", "b"});
  t.row().add("x").add(std::int64_t{1});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Format, RowRequiredBeforeAdd) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), PreconditionError);
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.425), "42.5%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(RingBuffer, FifoAndLifoPopsAcrossWrapAndGrowth) {
  RingBuffer<int> r;
  EXPECT_TRUE(r.empty());
  // Fill past the initial capacity so growth relinearizes a wrapped ring.
  for (int i = 0; i < 5; ++i) r.push_back(i);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  // head_ is now mid-array: the next pushes wrap.
  for (int i = 0; i < 20; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 20u);
  EXPECT_EQ(r.front(), 0);
  EXPECT_EQ(r.back(), 19);
  // Owner LIFO end and thief FIFO end interleaved.
  r.pop_back();            // drops 19
  EXPECT_EQ(r.back(), 18);
  r.pop_front();           // drops 0
  EXPECT_EQ(r.front(), 1);
  EXPECT_EQ(r.size(), 18u);
}

TEST(RingBuffer, ClearKeepsCapacityForSteadyStateReuse) {
  RingBuffer<int> r;
  for (int i = 0; i < 100; ++i) r.push_back(i);
  const std::size_t cap = r.capacity();
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), cap);
  for (int i = 0; i < 100; ++i) r.push_back(i);
  EXPECT_EQ(r.capacity(), cap);  // no reallocation on refill
}

TEST(Assert, CheckThrowsWithMessage) {
  try {
    DAS_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace das
