// Tests for the discrete-event engine: determinism, conservation (every task
// runs exactly once), dependency ordering, steal-exemption, moldable
// assemblies, interference/DVFS response, multi-run PTT persistence, and
// multi-rank DAGs with delayed cross-rank edges.

#include <gtest/gtest.h>

#include <vector>

#include "kernels/registry.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "workloads/heat.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das::sim {
namespace {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag small_dag(int parallelism = 3, int tasks = 60, int tile = 16) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = tile;
    return workloads::make_synthetic_dag(spec);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(SimTest, EventQueueOrdersByTimeThenSequence) {
  EventQueue<int> q;
  q.push(2.0, 20);
  q.push(1.0, 10);
  q.push(1.0, 11);  // same time: FIFO by insertion
  q.push(0.5, 5);
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop().payload, 5);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 11);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_TRUE(q.empty());
}

TEST_F(SimTest, EventQueueMergesLanesAndHeapInGlobalTimeSeqOrder) {
  // Lane events (nondecreasing per lane, as the engine's fixed-delay event
  // classes guarantee) must interleave with heap events purely by
  // (time, insertion seq) — the order a single heap would produce.
  EventQueue<int> q;
  q.set_num_lanes(2);
  q.push(2.0, 20);            // heap, seq 0
  q.push_lane(0, 1.0, 10);    // lane 0, seq 1
  q.push_lane(1, 1.0, 11);    // lane 1, seq 2: same time, later seq
  q.push_lane(0, 2.0, 12);    // lane 0, seq 3: ties with heap's 2.0, later seq
  q.push(0.5, 5);             // heap, seq 4: earliest time wins regardless
  ASSERT_EQ(q.size(), 5u);
  EXPECT_EQ(q.pop().payload, 5);
  EXPECT_EQ(q.top().payload, 10);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 11);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 12);
  EXPECT_TRUE(q.empty());
}

TEST_F(SimTest, EventQueueReservePreservesContentAndOrder) {
  EventQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(static_cast<double>(100 - i), i);
  q.reserve(100000);  // headroom for a big job release; no behaviour change
  ASSERT_EQ(q.size(), 100u);
  for (int i = 99; i >= 0; --i) EXPECT_EQ(q.pop().payload, i);
}

TEST_F(SimTest, EveryTaskExecutesExactlyOnce) {
  for (Policy p : all_policies()) {
    Dag dag = small_dag();
    SimEngine eng(topo_, p, registry_);
    eng.run(dag);
    EXPECT_EQ(eng.stats().tasks_total(), dag.num_nodes()) << policy_name(p);
    for (NodeId i = 0; i < dag.num_nodes(); ++i)
      EXPECT_GE(eng.completion_time(i), 0.0) << policy_name(p);
  }
}

TEST_F(SimTest, DeterministicAcrossRunsWithSameSeed) {
  for (Policy p : {Policy::kRws, Policy::kDamC, Policy::kDamP}) {
    std::vector<double> makespans;
    std::vector<std::int64_t> task_counts;
    for (int rep = 0; rep < 3; ++rep) {
      Dag dag = small_dag(4, 200);
      SimOptions opts;
      opts.seed = 99;
      SimEngine eng(topo_, p, registry_, opts);
      makespans.push_back(eng.run(dag));
      task_counts.push_back(eng.stats().tasks_at(Priority::kHigh, 0));
    }
    EXPECT_DOUBLE_EQ(makespans[0], makespans[1]) << policy_name(p);
    EXPECT_DOUBLE_EQ(makespans[1], makespans[2]) << policy_name(p);
    EXPECT_EQ(task_counts[0], task_counts[1]) << policy_name(p);
  }
}

TEST_F(SimTest, DifferentSeedsChangeRwsSchedules) {
  double m1, m2;
  {
    Dag dag = small_dag(4, 400);
    SimOptions o;
    o.seed = 1;
    SimEngine eng(topo_, Policy::kRws, registry_, o);
    m1 = eng.run(dag);
  }
  {
    Dag dag = small_dag(4, 400);
    SimOptions o;
    o.seed = 2;
    SimEngine eng(topo_, Policy::kRws, registry_, o);
    m2 = eng.run(dag);
  }
  EXPECT_NE(m1, m2);  // random stealing + noise differ per seed
}

TEST_F(SimTest, DependenciesRespected) {
  // Chain of 30 tasks: completion times must be strictly increasing.
  Dag dag;
  NodeId prev = kInvalidNode;
  for (int i = 0; i < 30; ++i) {
    TaskParams p;
    p.p0 = 16;
    const NodeId n = dag.add_node(ids_.matmul, Priority::kLow, p);
    if (prev != kInvalidNode) dag.add_edge(prev, n);
    prev = n;
  }
  SimEngine eng(topo_, Policy::kRwsmC, registry_);
  eng.run(dag);
  for (NodeId i = 1; i < dag.num_nodes(); ++i)
    EXPECT_GT(eng.completion_time(i), eng.completion_time(i - 1));
}

TEST_F(SimTest, EdgeDelayPostponesSuccessor) {
  Dag dag;
  TaskParams p;
  p.p0 = 16;
  const NodeId a = dag.add_node(ids_.matmul, Priority::kLow, p);
  const NodeId b = dag.add_node(ids_.matmul, Priority::kLow, p);
  dag.add_edge(a, b, /*delay_s=*/0.5);
  SimOptions opts;
  opts.noise = false;
  SimEngine eng(topo_, Policy::kRws, registry_, opts);
  eng.run(dag);
  EXPECT_GE(eng.completion_time(b) - eng.completion_time(a), 0.5);
}

TEST_F(SimTest, HighPriorityTasksHonourFixedPlacesUnderFa) {
  Dag dag = small_dag(2, 400);
  SimEngine eng(topo_, Policy::kFa, registry_);
  eng.run(dag);
  // FA maps every high-priority task to the Denver cores, width 1, split
  // round-robin (paper Fig. 5(c)).
  const auto dist = eng.stats().distribution(Priority::kHigh);
  ASSERT_EQ(dist.size(), 2u);
  for (const auto& [place, share] : dist) {
    EXPECT_LE(place.leader, 1);
    EXPECT_EQ(place.width, 1);
    EXPECT_NEAR(share, 0.5, 0.01);
  }
}

TEST_F(SimTest, MoldingProducesWidePlacesForRwsmC) {
  Dag dag = small_dag(6, 1200);
  SimEngine eng(topo_, Policy::kRwsmC, registry_);
  eng.run(dag);
  std::int64_t wide = 0;
  for (int pid = 0; pid < topo_.num_places(); ++pid) {
    if (topo_.place_at(pid).width > 1)
      wide += eng.stats().tasks_at(Priority::kLow, pid) +
              eng.stats().tasks_at(Priority::kHigh, pid);
  }
  // Zero-init exploration alone guarantees some wide executions.
  EXPECT_GT(wide, 0);
}

TEST_F(SimTest, StealingSpreadsRwsWork) {
  Dag dag = small_dag(6, 1200);
  SimEngine eng(topo_, Policy::kRws, registry_);
  eng.run(dag);
  // All tasks are released from one parent's queue; without stealing the
  // other five cores would stay empty.
  int busy_cores = 0;
  for (int c = 0; c < topo_.num_cores(); ++c)
    if (eng.stats().busy_s(c) > 0.0) ++busy_cores;
  EXPECT_EQ(busy_cores, topo_.num_cores());
}

TEST_F(SimTest, InterferenceSlowsPerturbedCoreTasks) {
  // Same seed, same DAG; with a co-runner on core 0 the makespan under FA
  // (which pins criticals to denver) must grow.
  SimOptions opts;
  opts.noise = false;
  double clean, perturbed;
  {
    Dag dag = small_dag(2, 300, /*tile=*/64);  // paper-size ~0.6 ms tasks
    SimEngine eng(topo_, Policy::kFa, registry_, opts);
    clean = eng.run(dag);
  }
  {
    Dag dag = small_dag(2, 300, /*tile=*/64);
    SpeedScenario scenario(topo_);
    scenario.add_cpu_corunner(0);
    SimEngine eng(topo_, Policy::kFa, registry_, opts, &scenario);
    perturbed = eng.run(dag);
  }
  EXPECT_GT(perturbed, clean * 1.15);
}

TEST_F(SimTest, DvfsLowPhaseStretchesExecution) {
  SimOptions opts;
  opts.noise = false;
  double hi_phase, lo_phase;
  {
    Dag dag = small_dag(2, 60, /*tile=*/64);
    SimEngine eng(topo_, Policy::kFa, registry_, opts);
    hi_phase = eng.run(dag);
  }
  {
    Dag dag = small_dag(2, 60, /*tile=*/64);
    SpeedScenario scenario(topo_);
    // Permanently LO on the denver cluster.
    scenario.add_dvfs(DvfsSchedule{.cluster = 0, .period_s = 1e9, .duty_hi = 0.0,
                                   .hi = 1.0, .lo = 0.17});
    SimEngine eng(topo_, Policy::kFa, registry_, opts, &scenario);
    lo_phase = eng.run(dag);
  }
  EXPECT_GT(lo_phase, hi_phase * 1.5);
}

TEST_F(SimTest, PttPersistsAcrossRuns) {
  SimEngine eng(topo_, Policy::kDamC, registry_);
  Dag d1 = small_dag(2, 40);
  eng.run(d1);
  std::uint64_t samples_after_first = 0;
  for (int pid = 0; pid < topo_.num_places(); ++pid)
    samples_after_first += eng.ptt().table(ids_.matmul).samples(pid);
  EXPECT_GT(samples_after_first, 0u);

  Dag d2 = small_dag(2, 40);
  eng.run(d2);
  std::uint64_t samples_after_second = 0;
  for (int pid = 0; pid < topo_.num_places(); ++pid)
    samples_after_second += eng.ptt().table(ids_.matmul).samples(pid);
  EXPECT_GT(samples_after_second, samples_after_first);
  // The virtual clock is monotone across runs.
  EXPECT_GT(eng.now(), 0.0);
}

TEST_F(SimTest, RejectsTypeWithoutCostModel) {
  TaskTypeRegistry reg;
  const TaskTypeId no_cost = reg.register_type("opaque");
  Dag dag;
  dag.add_node(no_cost);
  SimEngine eng(topo_, Policy::kRws, reg);
  EXPECT_THROW(eng.run(dag), PreconditionError);
}

TEST_F(SimTest, MultiRankHeatDagCompletes) {
  workloads::HeatConfig cfg;
  cfg.rows = 160;
  cfg.cols = 64;
  cfg.ranks = 4;
  cfg.iterations = 6;
  cfg.tasks_per_rank = 4;
  Dag dag = workloads::make_heat_sim_dag(cfg, ids_.heat_compute, ids_.comm);
  EXPECT_TRUE(dag.is_acyclic());

  const Topology node_topo = Topology::haswell20();
  std::vector<RankSpec> ranks(4, RankSpec{&node_topo, nullptr});
  SimOptions opts;
  opts.stats_phases = cfg.iterations;
  SimEngine eng(ranks, Policy::kDamC, registry_, opts);
  eng.run(dag);

  std::int64_t total = 0;
  for (int r = 0; r < 4; ++r) total += eng.stats(r).tasks_total();
  EXPECT_EQ(total, dag.num_nodes());
  // Comm tasks are high priority and appear on every interior rank.
  EXPECT_GT(eng.stats(1).tasks_with_priority(Priority::kHigh), 0);
}

TEST_F(SimTest, MultiRankStatsStayRankLocal) {
  workloads::HeatConfig cfg;
  cfg.rows = 80;
  cfg.cols = 32;
  cfg.ranks = 2;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 4;
  Dag dag = workloads::make_heat_sim_dag(cfg, ids_.heat_compute, ids_.comm);
  const Topology node_topo = Topology::haswell20();
  std::vector<RankSpec> ranks(2, RankSpec{&node_topo, nullptr});
  SimEngine eng(ranks, Policy::kRws, registry_);
  eng.run(dag);
  std::int64_t expect_rank0 = 0;
  for (NodeId i = 0; i < dag.num_nodes(); ++i)
    if (dag.node(i).rank == 0) ++expect_rank0;
  EXPECT_EQ(eng.stats(0).tasks_total(), expect_rank0);
  EXPECT_EQ(eng.stats(1).tasks_total(), dag.num_nodes() - expect_rank0);
}

TEST_F(SimTest, PhaseTagsSegmentStats) {
  Dag dag;
  TaskParams p;
  p.p0 = 16;
  const NodeId a = dag.add_node(ids_.matmul, Priority::kLow, p);
  const NodeId b = dag.add_node(ids_.matmul, Priority::kLow, p);
  dag.node(a).phase = 0;
  dag.node(b).phase = 1;
  dag.add_edge(a, b);
  SimOptions opts;
  opts.stats_phases = 2;
  SimEngine eng(topo_, Policy::kRws, registry_, opts);
  eng.run(dag);
  std::int64_t phase0 = 0, phase1 = 0;
  for (int pid = 0; pid < topo_.num_places(); ++pid) {
    phase0 += eng.stats().tasks_at_phase(Priority::kLow, pid, 0);
    phase1 += eng.stats().tasks_at_phase(Priority::kLow, pid, 1);
  }
  EXPECT_EQ(phase0, 1);
  EXPECT_EQ(phase1, 1);
}

}  // namespace
}  // namespace das::sim
