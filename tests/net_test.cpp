// Tests for the in-process message-passing substrate: point-to-point
// matching, the per-(src,tag) FIFO guarantee, collectives, barrier, and a
// ring-exchange deadlock check.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "net/world.hpp"
#include "util/assert.hpp"

namespace das::net {
namespace {

TEST(Mailbox, MatchesBySourceAndTag) {
  Mailbox mb;
  mb.deliver(Message{0, 7, {std::byte{1}}});
  mb.deliver(Message{1, 7, {std::byte{2}}});
  mb.deliver(Message{0, 8, {std::byte{3}}});
  EXPECT_EQ(mb.pending(), 3u);
  const Message m = mb.take(1, 7);
  EXPECT_EQ(m.payload[0], std::byte{2});
  Message out;
  EXPECT_FALSE(mb.try_take(1, 7, out));
  EXPECT_TRUE(mb.try_take(0, 8, out));
  EXPECT_EQ(out.payload[0], std::byte{3});
  EXPECT_TRUE(mb.try_take(0, 7, out));
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, FifoPerSourceTagPair) {
  Mailbox mb;
  for (int i = 0; i < 5; ++i)
    mb.deliver(Message{0, 1, {std::byte(i)}});
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(mb.take(0, 1).payload[0], std::byte(i));
}

TEST(World, PingPong) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, 42);
      EXPECT_EQ(comm.recv_value<int>(1, 1), 43);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 0), 42);
      comm.send_value(0, 1, 43);
    }
  });
}

TEST(World, RecvSizeMismatchThrows) {
  World world(1);
  auto& c = world.comm(0);
  const double v = 1.0;
  c.send(0, 3, &v, sizeof(v));
  float small;
  EXPECT_THROW(c.recv(0, 3, &small, sizeof(small)), PreconditionError);
}

TEST(World, NegativeUserTagRejected) {
  World world(1);
  auto& c = world.comm(0);
  int v = 0;
  EXPECT_THROW(c.send(0, -1, &v, sizeof(v)), PreconditionError);
}

TEST(World, AllreduceSum) {
  constexpr int kRanks = 5;
  World world(kRanks);
  world.run([&](Comm& comm) {
    std::vector<double> data = {static_cast<double>(comm.rank()), 1.0};
    comm.allreduce_sum(data.data(), data.size());
    EXPECT_DOUBLE_EQ(data[0], 0 + 1 + 2 + 3 + 4);
    EXPECT_DOUBLE_EQ(data[1], kRanks);
  });
}

TEST(World, BroadcastFromRoot) {
  World world(4);
  world.run([](Comm& comm) {
    std::vector<double> data(3, comm.rank() == 2 ? 7.5 : 0.0);
    comm.broadcast(data.data(), data.size(), /*root=*/2);
    for (double v : data) EXPECT_DOUBLE_EQ(v, 7.5);
  });
}

TEST(World, BarrierSeparatesPhases) {
  constexpr int kRanks = 6;
  World world(kRanks);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  world.run([&](Comm& comm) {
    (void)comm;
    phase1.fetch_add(1);
    comm.barrier();
    if (phase1.load() != kRanks) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(World, RingExchangeDoesNotDeadlock) {
  constexpr int kRanks = 8;
  World world(kRanks);
  world.run([&](Comm& comm) {
    const int right = (comm.rank() + 1) % kRanks;
    const int left = (comm.rank() + kRanks - 1) % kRanks;
    // Everyone sends first (buffered), then receives: must not deadlock.
    for (int round = 0; round < 50; ++round) {
      comm.send_value(right, 5, comm.rank() * 1000 + round);
      const int got = comm.recv_value<int>(left, 5);
      EXPECT_EQ(got, left * 1000 + round);
    }
  });
}

TEST(World, ManyMessagesStress) {
  World world(4);
  world.run([](Comm& comm) {
    constexpr int kMsgs = 2000;
    if (comm.rank() == 0) {
      std::int64_t sum = 0;
      for (int i = 0; i < kMsgs * 3; ++i) {
        // Deterministic drain order: round-robin over sources.
        const int src = 1 + (i % 3);
        sum += comm.recv_value<int>(src, 9);
      }
      // Each of ranks 1..3 sends 0..kMsgs-1.
      EXPECT_EQ(sum, 3ll * kMsgs * (kMsgs - 1) / 2);
    } else {
      for (int i = 0; i < kMsgs; ++i) comm.send_value(0, 9, i);
    }
  });
}

TEST(World, CommAccessorsValidate) {
  World world(2);
  EXPECT_EQ(world.size(), 2);
  EXPECT_EQ(world.comm(1).rank(), 1);
  EXPECT_EQ(world.comm(0).size(), 2);
  EXPECT_THROW(world.comm(2), PreconditionError);
}

}  // namespace
}  // namespace das::net
