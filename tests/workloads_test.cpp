// Tests for the application workloads: K-means (parallel == serial reference,
// convergence on separable blobs) and distributed Heat (real distributed run
// == serial Jacobi reference; DES DAG structure).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "kernels/registry.hpp"
#include "net/world.hpp"
#include "rt/runtime.hpp"
#include "util/spinlock.hpp"
#include "workloads/heat.hpp"
#include "workloads/interference.hpp"
#include "workloads/kmeans.hpp"

namespace das::workloads {
namespace {

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(WorkloadsTest, BlobsAreDeterministic) {
  const auto a = generate_blobs(100, 4, 3, 9);
  const auto b = generate_blobs(100, 4, 3, 9);
  EXPECT_EQ(a, b);
  const auto c = generate_blobs(100, 4, 3, 10);
  EXPECT_NE(a, c);
}

TEST_F(WorkloadsTest, KMeansChunksPartitionThePoints) {
  KMeansConfig cfg;
  cfg.points = 1003;
  cfg.chunks = 16;
  KMeans km(cfg, ids_.kmeans_map, ids_.kmeans_reduce);
  int covered = 0;
  for (int c = 0; c < cfg.chunks; ++c) {
    EXPECT_GE(km.chunk_size(c), 1);
    covered += km.chunk_size(c);
  }
  EXPECT_EQ(covered, cfg.points);
  EXPECT_EQ(km.chunk_begin(0), 0);
  EXPECT_EQ(km.chunk_begin(cfg.chunks), cfg.points);
  // Big chunks are bigger than small ones.
  EXPECT_GT(km.chunk_size(0), km.chunk_size(cfg.chunks - 1));
  EXPECT_EQ(km.num_big_chunks(), cfg.chunks / cfg.big_chunk_fraction_den);
}

TEST_F(WorkloadsTest, KMeansIterationDagShape) {
  KMeansConfig cfg;
  cfg.points = 500;
  cfg.chunks = 8;
  KMeans km(cfg, ids_.kmeans_map, ids_.kmeans_reduce);
  const Dag dag = km.make_sim_iteration_dag(3);
  EXPECT_EQ(dag.num_nodes(), cfg.chunks + 1);
  EXPECT_TRUE(dag.is_acyclic());
  int high = 0;
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    EXPECT_EQ(dag.node(i).phase, 3);
    if (dag.node(i).priority == Priority::kHigh) ++high;
  }
  EXPECT_EQ(high, km.num_big_chunks());
  // The reduce node is the single sink with cfg.chunks predecessors.
  const DagNode& reduce = dag.node(dag.num_nodes() - 1);
  EXPECT_EQ(reduce.num_predecessors, cfg.chunks);
  EXPECT_TRUE(dag.successors(dag.num_nodes() - 1).empty());
}

TEST_F(WorkloadsTest, KMeansParallelMatchesSerialReference) {
  KMeansConfig cfg;
  cfg.points = 4000;
  cfg.dims = 4;
  cfg.k = 5;
  cfg.chunks = 12;
  cfg.seed = 21;
  KMeans km(cfg, ids_.kmeans_map, ids_.kmeans_reduce);
  std::vector<double> serial(km.centroids());

  rt::Runtime rt(topo_, Policy::kDamC, registry_);
  for (int iter = 0; iter < 5; ++iter) {
    Dag dag = km.make_real_iteration_dag(0);
    rt.run(dag);
    km.serial_iteration(serial);
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_NEAR(km.centroids()[i], serial[i], 1e-9)
          << "iteration " << iter << " component " << i;
  }
}

TEST_F(WorkloadsTest, KMeansConvergesOnSeparableBlobs) {
  KMeansConfig cfg;
  cfg.points = 4000;
  cfg.dims = 3;
  cfg.k = 4;
  cfg.chunks = 8;
  KMeans km(cfg, ids_.kmeans_map, ids_.kmeans_reduce);
  rt::Runtime rt(topo_, Policy::kRwsmC, registry_);
  const double inertia_before = km.inertia();
  for (int iter = 0; iter < 12; ++iter) {
    Dag dag = km.make_real_iteration_dag(0);
    rt.run(dag);
  }
  const double inertia_after = km.inertia();
  // Lloyd iterations never increase inertia (tiny slack for FP noise)...
  EXPECT_LE(inertia_after, inertia_before * (1.0 + 1e-9));
  // ...and well-separated blobs with noise variance 1/3 per dim converge to
  // a mean squared distance of about dims/3 per point.
  EXPECT_LT(inertia_after / cfg.points, cfg.dims);
}

TEST_F(WorkloadsTest, HeatSimDagStructure) {
  HeatConfig cfg;
  cfg.rows = 64;
  cfg.cols = 32;
  cfg.ranks = 4;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 4;
  const Dag dag = make_heat_sim_dag(cfg, ids_.heat_compute, ids_.comm);
  EXPECT_TRUE(dag.is_acyclic());
  // Per iteration: 4 ranks x 4 compute + 6 comm tasks (2 interior ranks x 2 +
  // 2 edge ranks x 1).
  EXPECT_EQ(dag.num_nodes(), 3 * (4 * 4 + 6));
  int comm_high = 0;
  bool found_delayed_edge = false;
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    EXPECT_GE(n.rank, 0);
    EXPECT_LT(n.rank, 4);
    if (n.type == ids_.comm) {
      EXPECT_EQ(n.priority, Priority::kHigh) << "comm tasks are critical";
      ++comm_high;
    }
    for (const DagEdge& e : dag.successors(i))
      if (e.delay_s > 0.0) {
        found_delayed_edge = true;
        EXPECT_NE(dag.node(e.to).rank, n.rank)
            << "only cross-rank edges carry wire delays";
      }
  }
  EXPECT_EQ(comm_high, 3 * 6);
  EXPECT_TRUE(found_delayed_edge);
}

TEST_F(WorkloadsTest, HeatInitialValueDeterministic) {
  EXPECT_DOUBLE_EQ(heat_initial_value(3, 5), heat_initial_value(3, 5));
  EXPECT_GE(heat_initial_value(12, 7), 0.0);
  EXPECT_LT(heat_initial_value(12, 7), 1.0);
}

TEST_F(WorkloadsTest, DistributedHeatMatchesSerialReference) {
  HeatConfig cfg;
  cfg.rows = 48;
  cfg.cols = 24;
  cfg.ranks = 3;
  cfg.iterations = 10;
  cfg.tasks_per_rank = 4;

  const std::vector<double> reference = heat_serial_reference(cfg, 100.0);

  net::World world(cfg.ranks);
  std::vector<std::vector<double>> interiors(static_cast<std::size_t>(cfg.ranks));
  Spinlock lock;
  world.run([&](net::Comm& comm) {
    // Each rank runs its own small runtime (2 clusters x 2 cores keeps the
    // total thread count modest: 3 ranks x 4 workers).
    const Topology rank_topo = Topology::symmetric(2, 2);
    TaskTypeRegistry reg;
    const auto ids = kernels::register_paper_kernels(reg);
    rt::Runtime rt(rank_topo, Policy::kDamC, reg);
    HeatRank heat(cfg, comm, ids.heat_compute, ids.comm);
    for (int it = 0; it < cfg.iterations; ++it) {
      Dag dag = heat.make_iteration_dag(0);
      rt.run(dag);
      heat.advance();
    }
    std::lock_guard<Spinlock> g(lock);
    interiors[static_cast<std::size_t>(comm.rank())] = heat.interior();
  });

  const int band = cfg.rows / cfg.ranks;
  for (int r = 0; r < cfg.ranks; ++r) {
    const auto& got = interiors[static_cast<std::size_t>(r)];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(band) * cfg.cols);
    for (int row = 0; row < band; ++row) {
      for (int col = 0; col < cfg.cols; ++col) {
        const double want =
            reference[static_cast<std::size_t>(r * band + row) * cfg.cols + col];
        ASSERT_NEAR(got[static_cast<std::size_t>(row) * cfg.cols + col], want, 1e-12)
            << "rank " << r << " row " << row << " col " << col;
      }
    }
  }
}

TEST_F(WorkloadsTest, CoRunnerMakesProgressAndStops) {
  CoRunner co(CoRunner::Config{.kind = CoRunner::Kind::kCompute, .pin_core = -1, .tile = 32});
  co.start();
  while (co.iterations() < 3) cpu_relax();
  EXPECT_TRUE(co.running());
  co.stop();
  EXPECT_FALSE(co.running());
  const auto after = co.iterations();
  EXPECT_GE(after, 3u);
}

TEST_F(WorkloadsTest, MemoryCoRunnerRuns) {
  CoRunner co(CoRunner::Config{.kind = CoRunner::Kind::kMemory});
  co.start();
  while (co.iterations() < 2) cpu_relax();
  co.stop();
  EXPECT_GE(co.iterations(), 2u);
}

}  // namespace
}  // namespace das::workloads
