// Tests for the real-thread runtime: conservation, dependency ordering,
// moldable cooperative execution, steal-exemption of high-priority tasks,
// multi-run reuse, randomised stress DAGs, throttle-based asymmetry, and
// eventcount parking (a starved pool must sleep, not spin).

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "kernels/registry.hpp"
#include "platform/affinity.hpp"
#include "rt/runtime.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das::rt {
namespace {

class RtTest : public ::testing::Test {
 protected:
  RtTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(RtTest, EveryWorkClosureRunsExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> executed(kTasks);
  Dag dag;
  for (int i = 0; i < kTasks; ++i) {
    dag.add_node(ids_.matmul, Priority::kLow, {},
                 [&executed, i](const ExecContext& ctx) {
                   if (ctx.rank == 0)
                     executed[static_cast<std::size_t>(i)].fetch_add(1);
                 });
  }
  // Random layered dependencies.
  Xoshiro256 rng(5);
  for (int i = 1; i < kTasks; ++i) {
    const int preds = static_cast<int>(rng.below(3));
    for (int p = 0; p < preds; ++p)
      dag.add_edge(static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(i))), i);
  }
  ASSERT_TRUE(dag.is_acyclic());

  Runtime rt(topo_, Policy::kRws, registry_);
  rt.run(dag);
  for (int i = 0; i < kTasks; ++i)
    EXPECT_EQ(executed[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  EXPECT_EQ(rt.stats().tasks_total(), kTasks);
}

TEST_F(RtTest, DependenciesNeverInverted) {
  // Each task stores a completion ticket; successors must observe all
  // predecessors' tickets already set.
  constexpr int kTasks = 300;
  std::vector<std::atomic<bool>> done(kTasks);
  std::atomic<int> violations{0};
  Dag dag;
  std::vector<std::vector<NodeId>> preds(kTasks);
  Xoshiro256 rng(17);
  for (int i = 0; i < kTasks; ++i) {
    std::vector<NodeId> my_preds;
    if (i > 0) {
      const int n = 1 + static_cast<int>(rng.below(2));
      for (int p = 0; p < n; ++p)
        my_preds.push_back(static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(i))));
    }
    preds[static_cast<std::size_t>(i)] = my_preds;
    dag.add_node(ids_.matmul, Priority::kLow, {},
                 [&, i](const ExecContext& ctx) {
                   if (ctx.rank != 0) return;
                   for (NodeId p : preds[static_cast<std::size_t>(i)])
                     if (!done[static_cast<std::size_t>(p)].load(std::memory_order_acquire))
                       violations.fetch_add(1);
                   done[static_cast<std::size_t>(i)].store(true, std::memory_order_release);
                 });
    for (NodeId p : my_preds) dag.add_edge(p, i);
  }
  Runtime rt(topo_, Policy::kDamC, registry_);
  rt.run(dag);
  EXPECT_EQ(violations.load(), 0);
}

TEST_F(RtTest, MoldableAssemblyCoversAllRanks) {
  // Force a fixed wide place by pre-seeding the PTT so DAM-P sends the
  // high-priority task to (2,4); verify all 4 ranks participate.
  std::atomic<std::uint32_t> rank_mask{0};
  std::atomic<int> width_seen{0};
  Dag dag;
  dag.add_node(ids_.matmul, Priority::kHigh, {},
               [&](const ExecContext& ctx) {
                 rank_mask.fetch_or(1u << ctx.rank);
                 width_seen.store(ctx.width);
                 EXPECT_EQ(ctx.leader, 2);
                 EXPECT_GE(ctx.core, 2);
                 EXPECT_LE(ctx.core, 5);
               });
  Runtime rt(topo_, Policy::kDamP, registry_);
  rt.ptt().table(ids_.matmul).fill(1.0);
  for (int i = 0; i < 64; ++i)
    rt.ptt().table(ids_.matmul).update(ExecutionPlace{2, 4}, 0.0001);
  rt.run(dag);
  EXPECT_EQ(width_seen.load(), 4);
  EXPECT_EQ(rank_mask.load(), 0b1111u);
  EXPECT_EQ(rt.stats().tasks_at(Priority::kHigh, topo_.place_id({2, 4})), 1);
}

TEST_F(RtTest, HighPriorityExecutesOnDenverUnderFa) {
  workloads::SyntheticDagSpec spec;
  spec.type = ids_.matmul;
  spec.parallelism = 2;
  spec.total_tasks = 200;
  spec.work = [](const ExecContext&) { busy_wait_ns(20000); };
  Dag dag = workloads::make_synthetic_dag(spec);
  Runtime rt(topo_, Policy::kFa, registry_);
  rt.run(dag);
  // Every high-priority task ran at a width-1 denver place.
  std::int64_t high_total = rt.stats().tasks_with_priority(Priority::kHigh);
  EXPECT_EQ(high_total, 100);
  EXPECT_EQ(rt.stats().tasks_at(Priority::kHigh, topo_.place_id({0, 1})) +
                rt.stats().tasks_at(Priority::kHigh, topo_.place_id({1, 1})),
            high_total);
}

TEST_F(RtTest, RunIsRepeatableAndAccumulates) {
  Runtime rt(topo_, Policy::kDamC, registry_);
  for (int iter = 0; iter < 5; ++iter) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = 3;
    spec.total_tasks = 60;
    spec.work = [](const ExecContext&) { busy_wait_ns(5000); };
    Dag dag = workloads::make_synthetic_dag(spec);
    const double elapsed = rt.run(dag);
    EXPECT_GT(elapsed, 0.0);
  }
  EXPECT_EQ(rt.stats().tasks_total(), 5 * 60);
}

TEST_F(RtTest, CostModelFallbackExecutesWorklessNodes) {
  Dag dag;
  TaskParams p;
  p.p0 = 16;
  dag.add_node(ids_.matmul, Priority::kLow, p);  // no work closure
  Runtime rt(topo_, Policy::kRws, registry_);
  rt.run(dag);
  EXPECT_EQ(rt.stats().tasks_total(), 1);
  EXPECT_GT(rt.stats().total_busy_s(), 0.0);
}

TEST_F(RtTest, ThrottleStretchesEmulatedSlowCores) {
  // One chain of tasks pinned by policy FA to denver; compare wall time with
  // an emulation scenario that halves core speeds vs. without.
  // The 2x stretch is only measurable when every worker owns a CPU:
  // oversubscribed (e.g. single-CPU sanitizer) runs are dominated by
  // preemption, and the busy-wait deficit disappears into that noise.
  if (allowed_cpu_count() < topo_.num_cores()) {
    GTEST_SKIP() << "only " << allowed_cpu_count() << " CPUs for "
                 << topo_.num_cores() << " workers — wall-clock ratio is "
                 << "noise under oversubscription";
  }
  auto run_once = [&](const SpeedScenario* scenario) {
    RtOptions opts;
    opts.scenario = scenario;
    Runtime rt(topo_, Policy::kFa, registry_, opts);
    Dag dag;
    NodeId prev = kInvalidNode;
    for (int i = 0; i < 30; ++i) {
      const NodeId n = dag.add_node(ids_.matmul, Priority::kHigh, {},
                                    [](const ExecContext&) { busy_wait_ns(500000); });
      if (prev != kInvalidNode) dag.add_edge(prev, n);
      prev = n;
    }
    return rt.run(dag);
  };
  const double native = run_once(nullptr);
  SpeedScenario slow(topo_);
  slow.add_interference(InterferenceEvent{.cores = {0, 1}, .cpu_share = 0.5});
  const double throttled = run_once(&slow);
  // 30 x 0.5 ms chain at half speed ~ 2x; allow generous slack for CI noise.
  EXPECT_GT(throttled, native * 1.5);
}

TEST_F(RtTest, StatsBusyTimeTracksWork) {
  // Busy time is measured in wall clock per participation; preemption under
  // oversubscription inflates it arbitrarily, so the bound is only
  // meaningful when every worker can own a CPU.
  if (allowed_cpu_count() < topo_.num_cores()) {
    GTEST_SKIP() << "only " << allowed_cpu_count() << " CPUs for "
                 << topo_.num_cores() << " workers — busy-time bound is "
                 << "noise under oversubscription";
  }
  Dag dag;
  for (int i = 0; i < 24; ++i)
    dag.add_node(ids_.matmul, Priority::kLow, {},
                 [](const ExecContext&) { busy_wait_ns(1000000); });
  Runtime rt(topo_, Policy::kRws, registry_);
  rt.run(dag);
  // 24 ms of total work, distributed.
  EXPECT_NEAR(rt.stats().total_busy_s(), 0.024, 0.012);
}

TEST_F(RtTest, RejectsMultiRankDag) {
  Dag dag;
  dag.add_node(ids_.matmul);
  dag.node(0).rank = 1;
  Runtime rt(topo_, Policy::kRws, registry_);
  EXPECT_THROW(rt.run(dag), PreconditionError);
}

TEST_F(RtTest, StarvedPoolParksInsteadOfSpinning) {
  // A job is in flight but offers work to only ONE worker: the single task
  // blocks (sleeps — no busy-wait) while every other worker has nothing to
  // execute or steal. With eventcount parking the pool's CPU consumption
  // over the window must be ~0; the pre-PR spin loop burned
  // (num_cores - 1) x window of CPU here. getrusage covers the whole
  // process, so the bound is deliberately generous — it still sits far
  // below what even one spinning worker would burn.
  Runtime rt(topo_, Policy::kRws, registry_);
  constexpr auto kSettle = std::chrono::milliseconds(100);
  constexpr auto kStarved = std::chrono::milliseconds(250);
  std::atomic<int> parked_mid_flight{-1};

  Dag dag;
  dag.add_node(ids_.matmul, Priority::kLow, {}, [&](const ExecContext& ctx) {
    if (ctx.rank != 0) return;
    std::this_thread::sleep_for(kSettle);  // let the idle workers park
    parked_mid_flight.store(rt.parked_workers());
    std::this_thread::sleep_for(kStarved);
  });

  struct rusage before {}, after {};
  ASSERT_EQ(getrusage(RUSAGE_SELF, &before), 0);
  rt.run(dag);
  ASSERT_EQ(getrusage(RUSAGE_SELF, &after), 0);
  auto cpu_s = [](const rusage& r) {
    return static_cast<double>(r.ru_utime.tv_sec + r.ru_stime.tv_sec) +
           1e-6 * static_cast<double>(r.ru_utime.tv_usec + r.ru_stime.tv_usec);
  };
  const double burned = cpu_s(after) - cpu_s(before);

  // While the job was in flight, (nearly) every other worker was parked on
  // its eventcount — not yielding in a backoff loop.
  EXPECT_GE(parked_mid_flight.load(), topo_.num_cores() - 2);
  // 0.35 s of wall starvation x 5 idle workers would burn ~1.75 s spinning;
  // parked workers leave only scheduling noise.
  EXPECT_LT(burned, 0.5);
}

TEST_F(RtTest, StressManySmallTasksAllPolicies) {
  for (Policy p : all_policies()) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = 6;
    spec.total_tasks = 1200;
    spec.work = [](const ExecContext&) { busy_wait_ns(2000); };
    Dag dag = workloads::make_synthetic_dag(spec);
    Runtime rt(topo_, p, registry_);
    rt.run(dag);
    EXPECT_EQ(rt.stats().tasks_total(), 1200) << policy_name(p);
  }
}

}  // namespace
}  // namespace das::rt
