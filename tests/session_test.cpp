// Tests for the multi-tenant service layer (exec/session.hpp +
// exec/service.cpp): config builder parity, bitwise-deterministic sim
// fairness traces, weighted DRR shares, admission reject/block paths,
// priority ordering within a tenant, grouped draining, counters, and an
// rt multi-tenant concurrent-submitter stress (TSan coverage).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "util/time.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag small_dag(int parallelism = 3, int tasks = 20, WorkFn work = {}) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = 16;  // small tiles: fast
    spec.work = std::move(work);
    return workloads::make_synthetic_dag(spec);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST(ExecutorConfigBuilder, DefaultsMatchThePlainStruct) {
  const ExecutorConfig plain;
  const ExecutorConfig built = ExecutorConfig::builder().build();
  EXPECT_EQ(built.seed, plain.seed);
  EXPECT_EQ(built.scenario, plain.scenario);
  EXPECT_EQ(built.stats_phases, plain.stats_phases);
  EXPECT_EQ(built.rt.pin_threads, plain.rt.pin_threads);
  EXPECT_EQ(built.sim.noise, plain.sim.noise);
  EXPECT_EQ(built.service.max_service_inflight,
            plain.service.max_service_inflight);
  EXPECT_EQ(built.service.drr_quantum_tasks, plain.service.drr_quantum_tasks);
}

TEST(ExecutorConfigBuilder, SettersCoverEngineAndServiceOptions) {
  const ExecutorConfig cfg = ExecutorConfig::builder()
                                 .seed(123)
                                 .stats_phases(3)
                                 .pin_threads(false)
                                 .steal_attempts_per_round(9)
                                 .sim_noise(false)
                                 .max_service_inflight(12)
                                 .drr_quantum_tasks(64)
                                 .build();
  EXPECT_EQ(cfg.seed, 123u);
  EXPECT_EQ(cfg.stats_phases, 3);
  EXPECT_FALSE(cfg.rt.pin_threads);
  EXPECT_EQ(cfg.rt.steal_attempts_per_round, 9);
  EXPECT_FALSE(cfg.sim.noise);
  EXPECT_EQ(cfg.service.max_service_inflight, 12);
  EXPECT_EQ(cfg.service.drr_quantum_tasks, 64);
}

TEST_F(SessionTest, SimFairnessTraceIsBitwiseDeterministic) {
  // The tentpole determinism claim: the same 3-tenant submission sequence
  // on a fresh sim executor replays BITWISE — identical arrival, queue and
  // makespan doubles job for job (so fairness traces are replayable).
  struct Trace {
    std::string tenant;
    double arrival_s, queue_s, makespan_s;
  };
  auto run_once = [&] {
    auto exec = make_executor(
        Backend::kSim, topo_, Policy::kDamC, registry_,
        ExecutorConfig::builder().seed(7).max_service_inflight(4).build());
    TenantConfig a{.name = "a", .weight = 1.0, .max_in_flight = 2};
    TenantConfig b{.name = "b", .weight = 2.0, .max_in_flight = 2};
    TenantConfig c{.name = "c", .weight = 4.0, .max_in_flight = 2};
    auto sa = exec->open_session(a);
    auto sb = exec->open_session(b);
    auto sc = exec->open_session(c);
    std::vector<Dag> dags;
    dags.reserve(30);
    std::vector<JobId> ids;
    for (int j = 0; j < 10; ++j) {
      dags.push_back(small_dag(2, 20));
      ids.push_back(sa->submit(dags.back()));
      dags.push_back(small_dag(3, 20));
      ids.push_back(sb->submit(dags.back()));
      dags.push_back(small_dag(4, 20));
      ids.push_back(sc->submit(dags.back()));
    }
    std::vector<Trace> trace;
    for (JobId id : ids) {
      const RunResult r = exec->wait(id);
      trace.push_back(Trace{r.tenant, r.arrival_s, r.queue_s, r.makespan_s});
    }
    return trace;
  };
  const auto t1 = run_once();
  const auto t2 = run_once();
  ASSERT_EQ(t1.size(), 30u);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].tenant, t2[i].tenant) << "job " << i;
    // Bitwise: exact double equality, not a tolerance.
    EXPECT_EQ(t1[i].arrival_s, t2[i].arrival_s) << "job " << i;
    EXPECT_EQ(t1[i].queue_s, t2[i].queue_s) << "job " << i;
    EXPECT_EQ(t1[i].makespan_s, t2[i].makespan_s) << "job " << i;
  }
}

TEST_F(SessionTest, DrrSharesFollowWeightsWhileBacklogged) {
  // Three backlogged tenants with weights 1:2:4 and equal job sizes: among
  // the first releases (while ALL tenants still have queued work), released
  // task counts normalized by weight must agree within 10%.
  // The global in-flight cap spreads releases over virtual time (so
  // release instants order the trace) without biasing shares: the pump
  // resumes an interrupted tenant's turn instead of rotating past it.
  auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_,
                            ExecutorConfig::builder()
                                .seed(11)
                                .drr_quantum_tasks(20)
                                .max_service_inflight(4)
                                .build());
  const double weights[3] = {1.0, 2.0, 4.0};
  std::vector<std::unique_ptr<Session>> sessions;
  for (int t = 0; t < 3; ++t) {
    TenantConfig cfg;
    cfg.name = std::string(1, static_cast<char>('a' + t));
    cfg.weight = weights[t];
    cfg.max_in_flight = 0;  // unbounded: shares shaped by DRR alone
    sessions.push_back(exec->open_session(cfg));
  }
  constexpr int kJobsPerTenant = 28;
  std::vector<Dag> dags;
  dags.reserve(3 * kJobsPerTenant);
  struct Rel {
    int tenant;
    double release_s;
    std::int64_t tasks;
  };
  std::vector<std::pair<JobId, int>> ids;
  for (int j = 0; j < kJobsPerTenant; ++j)
    for (int t = 0; t < 3; ++t) {
      dags.push_back(small_dag(2, 20));
      ids.emplace_back(
          sessions[static_cast<std::size_t>(t)]->submit(dags.back()), t);
    }
  std::vector<Rel> rels;
  for (const auto& [id, t] : ids) {
    const RunResult r = exec->wait(id);
    rels.push_back(Rel{t, r.arrival_s + r.queue_s, r.tasks});
  }
  // Weighted shares over the release prefix where EVERY tenant is still
  // backlogged: the heaviest tenant (share 4/7) drains its 28 jobs after
  // ~49 releases, so the first half (42) is a clean measurement window.
  std::sort(rels.begin(), rels.end(), [](const Rel& x, const Rel& y) {
    return x.release_s < y.release_s;
  });
  const std::size_t prefix = rels.size() / 2;
  double got[3] = {0, 0, 0};
  double total = 0;
  for (std::size_t i = 0; i < prefix; ++i) {
    got[rels[i].tenant] += static_cast<double>(rels[i].tasks);
    total += static_cast<double>(rels[i].tasks);
  }
  const double wsum = weights[0] + weights[1] + weights[2];
  for (int t = 0; t < 3; ++t) {
    const double share = got[t] / total;
    const double want = weights[t] / wsum;
    EXPECT_NEAR(share, want, 0.10 * want + 0.02)
        << "tenant " << t << " got share " << share << ", want " << want;
  }
}

TEST_F(SessionTest, AdmissionRejectsOverBudgetSubmits) {
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    auto exec = make_executor(backend, topo_, Policy::kRws, registry_);
    TenantConfig cfg;
    cfg.name = "bounded";
    cfg.max_in_flight = 1;
    cfg.max_queued_tasks = 20;  // exactly one queued 20-task job
    cfg.overload = Overload::kReject;
    auto session = exec->open_session(cfg);
    // On rt the first job must STAY in flight while the others are
    // submitted (otherwise its completion frees the queue slot and nothing
    // rejects): gate its tasks until all three submits are in. Sim never
    // calls the work closure and passes no virtual time between submits.
    std::atomic<bool> gate{false};
    const WorkFn hold = [&gate](const ExecContext&) {
      while (!gate.load(std::memory_order_acquire)) busy_wait_ns(500);
    };
    const Dag d1 = small_dag(2, 20, hold);
    const Dag d2 = small_dag(2, 20);
    const Dag d3 = small_dag(2, 20);
    const JobId j1 = session->submit(d1);  // released (in-flight 0 -> 1)
    const JobId j2 = session->submit(d2);  // queued (20 tasks = budget)
    const JobId j3 = session->submit(d3);  // over budget -> rejected
    const RunResult r3 = exec->wait(j3);   // resolves without the engine
    gate.store(true, std::memory_order_release);
    EXPECT_EQ(r3.outcome, RunResult::Outcome::kRejected);
    EXPECT_EQ(r3.tasks, 0);
    EXPECT_DOUBLE_EQ(r3.makespan_s, 0.0);
    EXPECT_EQ(r3.tenant, "bounded");
    const RunResult r1 = exec->wait(j1);
    const RunResult r2 = exec->wait(j2);
    EXPECT_TRUE(r1.ok());
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(r1.tasks + r2.tasks, 40);
    EXPECT_GE(r2.queue_s, 0.0);  // waited behind j1's in-flight slot
    const TenantCounters counters = session->counters();
    EXPECT_EQ(counters.submitted, 2);
    EXPECT_EQ(counters.rejected, 1);
    EXPECT_EQ(counters.released, 2);
    EXPECT_EQ(counters.completed, 2);
  }
}

TEST_F(SessionTest, BlockingBackpressureUnblocksAsTheQueueDrains) {
  // Overload::kBlock: the 3rd submit must not return until the backlog
  // drains below budget — on sim the submitter pumps virtual time, on rt
  // it parks until a worker completes a job. Nothing is ever rejected.
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    auto exec = make_executor(backend, topo_, Policy::kRws, registry_);
    TenantConfig cfg;
    cfg.name = "pushback";
    cfg.max_in_flight = 1;
    cfg.max_queued_tasks = 20;
    cfg.overload = Overload::kBlock;
    auto session = exec->open_session(cfg);
    std::vector<Dag> dags;
    for (int j = 0; j < 4; ++j) dags.push_back(small_dag(2, 20));
    std::vector<JobId> ids;
    for (const Dag& dag : dags) ids.push_back(session->submit(dag));
    const std::vector<RunResult> results = session->drain();
    ASSERT_EQ(results.size(), 4u);
    for (const RunResult& r : results) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(r.tasks, 20);
      EXPECT_GT(r.makespan_s, 0.0);
    }
    EXPECT_EQ(session->counters().rejected, 0);
    EXPECT_EQ(session->counters().completed, 4);
  }
}

TEST_F(SessionTest, HighPriorityJumpsTheTenantQueue) {
  // With the tenant throttled to one in-flight job, a high-priority job
  // submitted LAST among the queued ones must release before the earlier
  // low-priority ones (priority orders within a tenant's queue).
  auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_);
  TenantConfig cfg;
  cfg.name = "prio";
  cfg.max_in_flight = 1;
  auto session = exec->open_session(cfg);
  const Dag running = small_dag(2, 20);
  const Dag low1 = small_dag(2, 20);
  const Dag low2 = small_dag(2, 20);
  const Dag high = small_dag(2, 20);
  const JobId r0 = session->submit(running);  // occupies the in-flight slot
  const JobId l1 = session->submit(low1);
  const JobId l2 = session->submit(low2);
  SubmitOptions urgent;
  urgent.priority = 5;
  const JobId h = session->submit(high, urgent);
  std::map<JobId, double> release;
  for (JobId id : {r0, l1, l2, h}) {
    const RunResult r = exec->wait(id);
    release[id] = r.arrival_s + r.queue_s;
  }
  EXPECT_LT(release[h], release[l1]);
  EXPECT_LT(release[h], release[l2]);
  EXPECT_LT(release[l1], release[l2]);  // FIFO within a priority
}

TEST_F(SessionTest, DrainGroupedBucketsByTenant) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_);
  auto alpha = exec->open_session(TenantConfig{.name = "alpha", .weight = 2.0});
  auto beta = exec->open_session(TenantConfig{.name = "beta", .weight = 1.0});
  std::vector<Dag> dags;
  for (int j = 0; j < 5; ++j) dags.push_back(small_dag(2, 20));
  exec->submit(dags[0]);  // bare
  alpha->submit(dags[1]);
  alpha->submit(dags[2]);
  beta->submit(dags[3]);
  exec->submit(dags[4]);  // bare
  const std::vector<TenantResults> groups = exec->drain_grouped();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].tenant, "");  // bare group first
  EXPECT_EQ(groups[0].results.size(), 2u);
  EXPECT_EQ(groups[1].tenant, "alpha");
  EXPECT_DOUBLE_EQ(groups[1].weight, 2.0);
  EXPECT_EQ(groups[1].results.size(), 2u);
  EXPECT_EQ(groups[2].tenant, "beta");
  EXPECT_EQ(groups[2].results.size(), 1u);
  for (const TenantResults& g : groups)
    for (const RunResult& r : g.results) EXPECT_EQ(r.tenant, g.tenant);
  // Everything was claimed: a second drain finds nothing.
  EXPECT_TRUE(exec->drain().empty());
}

TEST_F(SessionTest, SessionDrainClaimsOnlyItsOwnJobs) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_);
  auto mine = exec->open_session(TenantConfig{.name = "mine"});
  auto other = exec->open_session(TenantConfig{.name = "other"});
  std::vector<Dag> dags;
  for (int j = 0; j < 4; ++j) dags.push_back(small_dag(2, 20));
  mine->submit(dags[0]);
  other->submit(dags[1]);
  mine->submit(dags[2]);
  exec->submit(dags[3]);  // bare
  const std::vector<RunResult> drained = mine->drain();
  ASSERT_EQ(drained.size(), 2u);
  for (const RunResult& r : drained) EXPECT_EQ(r.tenant, "mine");
  // The other session's job and the bare job are still drainable.
  EXPECT_EQ(exec->drain().size(), 2u);
}

TEST_F(SessionTest, RtMultiTenantConcurrentSubmitterStress) {
  // 4 tenants, each driven by its own submitter thread against ONE rt
  // executor, with per-tenant in-flight bounds and a global cap: every task
  // of every admitted job runs exactly once, every wait resolves, and the
  // per-tenant counters balance. TSan coverage for svc_mu_ vs the worker
  // completion hook and the DRR pump.
  constexpr int kTenants = 4;
  constexpr int kJobsPerTenant = 6;
  constexpr int kTasksPerJob = 40;
  auto exec = make_executor(
      Backend::kRt, topo_, Policy::kDamC, registry_,
      ExecutorConfig::builder().max_service_inflight(6).build());

  std::atomic<std::int64_t> executed{0};
  const WorkFn work = [&executed](const ExecContext& ctx) {
    if (ctx.rank == 0) executed.fetch_add(1, std::memory_order_relaxed);
    busy_wait_ns(2000);
  };

  std::vector<std::unique_ptr<Session>> sessions;
  for (int t = 0; t < kTenants; ++t) {
    TenantConfig cfg;
    cfg.name = "tenant-" + std::to_string(t);
    cfg.weight = static_cast<double>(1 + t);
    cfg.max_in_flight = 2;
    sessions.push_back(exec->open_session(cfg));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    submitters.emplace_back([&, t] {
      Session& session = *sessions[static_cast<std::size_t>(t)];
      std::vector<Dag> dags;  // outlive the jobs this thread waits on
      dags.reserve(kJobsPerTenant);
      constexpr int kParallelism[] = {2, 4, 5};
      for (int j = 0; j < kJobsPerTenant; ++j)
        dags.push_back(
            small_dag(kParallelism[(t + j) % 3], kTasksPerJob, work));
      std::vector<JobId> ids;
      for (const Dag& dag : dags) ids.push_back(session.submit(dag));
      for (JobId id : ids) {
        const RunResult r = session.wait(id);
        if (!r.ok() || r.tasks != kTasksPerJob || r.makespan_s <= 0.0)
          failures.fetch_add(1);
        if (r.tenant != "tenant-" + std::to_string(t)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(executed.load(), kTenants * kJobsPerTenant * kTasksPerJob);
  EXPECT_EQ(exec->stats().tasks_total(),
            kTenants * kJobsPerTenant * kTasksPerJob);
  for (int t = 0; t < kTenants; ++t) {
    const TenantCounters counters =
        sessions[static_cast<std::size_t>(t)]->counters();
    EXPECT_EQ(counters.submitted, kJobsPerTenant);
    EXPECT_EQ(counters.released, kJobsPerTenant);
    EXPECT_EQ(counters.completed, kJobsPerTenant);
    EXPECT_EQ(counters.rejected, 0);
    EXPECT_EQ(counters.released_tasks, kJobsPerTenant * kTasksPerJob);
  }
}

TEST_F(SessionTest, SubmitBatchPreservesOrder) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_);
  auto session = exec->open_session(TenantConfig{.name = "batch"});
  const Dag d1 = small_dag(2, 20);
  const Dag d2 = small_dag(3, 30);
  const std::vector<JobId> ids = session->submit_batch({&d1, &d2});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_LT(ids[0], ids[1]);
  const RunResult r1 = session->wait(ids[0]);
  const RunResult r2 = session->wait(ids[1]);
  EXPECT_EQ(r1.tasks, d1.num_nodes());
  EXPECT_EQ(r2.tasks, d2.num_nodes());
}

}  // namespace
}  // namespace das
