// Tests for the kernel implementations (correctness + partition coverage)
// and for the DES cost models (calibration properties the figures rely on).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kernels/copy.hpp"
#include "kernels/cost_models.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "kernels/stencil.hpp"
#include "kernels/workspace.hpp"
#include "platform/topology.hpp"

namespace das::kernels {
namespace {

TEST(PartitionRows, CoversRangeExactlyOnce) {
  for (int n : {1, 7, 16, 33}) {
    for (int width : {1, 2, 3, 4, 8}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      for (int r = 0; r < width; ++r) {
        const RowRange rr = partition_rows(n, r, width);
        EXPECT_LE(rr.begin, rr.end);
        for (int i = rr.begin; i < rr.end; ++i) hits[static_cast<std::size_t>(i)]++;
      }
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1)
            << "n=" << n << " width=" << width << " row " << i;
    }
  }
}

TEST(PartitionRows, BalancedWithinOne) {
  for (int n : {10, 17}) {
    for (int width : {3, 4}) {
      int mn = n, mx = 0;
      for (int r = 0; r < width; ++r) {
        const RowRange rr = partition_rows(n, r, width);
        mn = std::min(mn, rr.end - rr.begin);
        mx = std::max(mx, rr.end - rr.begin);
      }
      EXPECT_LE(mx - mn, 1);
    }
  }
}

TEST(MatMul, PartitionedEqualsReference) {
  constexpr int n = 24;
  std::vector<double> a(n * n), b(n * n), c_ref(n * n), c_par(n * n, -1.0);
  for (int i = 0; i < n * n; ++i) {
    a[static_cast<std::size_t>(i)] = 0.25 * (i % 7) - 0.5;
    b[static_cast<std::size_t>(i)] = 0.125 * (i % 11) - 0.3;
  }
  matmul_reference(a.data(), b.data(), c_ref.data(), n);
  for (int width : {1, 2, 3, 4}) {
    std::fill(c_par.begin(), c_par.end(), -1.0);
    for (int r = 0; r < width; ++r)
      matmul_partition(a.data(), b.data(), c_par.data(), n, r, width);
    for (int i = 0; i < n * n; ++i)
      ASSERT_DOUBLE_EQ(c_par[static_cast<std::size_t>(i)],
                       c_ref[static_cast<std::size_t>(i)])
          << "width " << width;
  }
}

TEST(MatMul, IdentityTimesMatrix) {
  constexpr int n = 8;
  std::vector<double> eye(n * n, 0.0), b(n * n), c(n * n);
  for (int i = 0; i < n; ++i) eye[static_cast<std::size_t>(i) * n + i] = 1.0;
  for (int i = 0; i < n * n; ++i) b[static_cast<std::size_t>(i)] = i;
  matmul_reference(eye.data(), b.data(), c.data(), n);
  EXPECT_EQ(c, b);
}

TEST(Copy, PartitionedCopiesEverything) {
  constexpr std::size_t n = 1001;  // deliberately not divisible
  std::vector<double> src(n), dst(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<double>(i) * 0.5;
  for (int width : {1, 2, 3, 5}) {
    std::fill(dst.begin(), dst.end(), 0.0);
    for (int r = 0; r < width; ++r) copy_partition(src.data(), dst.data(), n, r, width);
    EXPECT_EQ(dst, src) << "width " << width;
  }
  EXPECT_DOUBLE_EQ(checksum(dst.data(), n), checksum(src.data(), n));
}

TEST(Stencil, PartitionedEqualsReference) {
  constexpr int n = 17;
  std::vector<double> in(n * n), ref(n * n, 0.0), par(n * n, 0.0);
  for (int i = 0; i < n * n; ++i) in[static_cast<std::size_t>(i)] = (i * 13) % 29;
  stencil_reference(in.data(), ref.data(), n);
  for (int width : {1, 2, 3, 4}) {
    std::fill(par.begin(), par.end(), 0.0);
    for (int r = 0; r < width; ++r) stencil_partition(in.data(), par.data(), n, r, width);
    EXPECT_EQ(par, ref) << "width " << width;
  }
}

TEST(Stencil, UniformFieldIsFixedPoint) {
  constexpr int n = 9;
  std::vector<double> in(n * n, 3.0), out(n * n, 0.0);
  stencil_reference(in.data(), out.data(), n);
  for (int i = 1; i < n - 1; ++i)
    for (int j = 1; j < n - 1; ++j)
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i) * n + j], 3.0);
}

TEST(Workspace, AcquireReleaseCycles) {
  WorkspacePool pool(2, 16);
  double* a = pool.acquire();
  double* b = pool.acquire();
  EXPECT_NE(a, b);
  a[0] = 1.0;
  pool.release(a);
  double* c = pool.acquire();
  EXPECT_EQ(c, a);  // LIFO freelist
  pool.release(b);
  pool.release(c);
}

// --- Cost models -------------------------------------------------------------

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : topo_(Topology::tx2()) {}

  CostQuery query(int core, int width, double speed, double bw = 1.0) const {
    CostQuery q;
    q.place = ExecutionPlace{core, width};
    q.core = core;
    q.speed = speed;
    q.bw_share = bw;
    q.cluster = &topo_.cluster_of_core(core);
    return q;
  }

  Topology topo_;
  CostModelConfig cfg_;
};

TEST_F(CostModelTest, MatmulScalesInverselyWithSpeed) {
  const CostFn f = matmul_cost(cfg_);
  TaskParams p;
  p.p0 = 64;
  const double fast = f(p, query(0, 1, 1.0));
  const double slow = f(p, query(0, 1, 0.5));
  EXPECT_NEAR(slow / fast, 2.0, 1e-9);
}

TEST_F(CostModelTest, MatmulCacheResidencyMatchesPaperNarrative) {
  // Tile 32 fits both L1s; 64/80 only the 64 KB Denver L1; 96 only L2.
  const CostFn f = matmul_cost(cfg_);
  auto per_flop = [&](int tile, int core) {
    TaskParams p;
    p.p0 = tile;
    const double t = f(p, query(core, 1, 1.0));
    return t / (2.0 * tile * tile * tile);
  };
  // Denver (core 0): 32, 64, 80 all L1-resident -> same per-flop rate.
  EXPECT_NEAR(per_flop(32, 0), per_flop(64, 0), 1e-18);
  EXPECT_NEAR(per_flop(64, 0), per_flop(80, 0), 1e-18);
  EXPECT_GT(per_flop(96, 0), per_flop(64, 0));  // L2 resident: slower
  // A57 (core 2): only 32 is L1-resident.
  EXPECT_GT(per_flop(64, 2), per_flop(32, 2));
  EXPECT_NEAR(per_flop(64, 2), per_flop(80, 2), 1e-18);  // both L2 on a57
}

TEST_F(CostModelTest, MatmulWidthReducesTimeButRaisesCost) {
  const CostFn f = matmul_cost(cfg_);
  TaskParams p;
  p.p0 = 64;
  const double t1 = f(p, query(2, 1, 0.55));
  const double t4 = f(p, query(2, 4, 0.55));
  EXPECT_LT(t4, t1);            // molding helps the task's latency
  EXPECT_GT(4.0 * t4, t1);      // but parallel cost rises (alpha > 0)
}

TEST_F(CostModelTest, CopyWidthScalingShowsDiminishingReturns) {
  const CostFn f = copy_cost(cfg_);
  TaskParams p;
  p.p0 = 1024 * 1024;
  // Denver (full speed): a single core is bandwidth-bound at 12 of the
  // cluster's 20 GB/s, so width 2 gains only 20/12 = 1.67x, not 2x.
  const double d1 = f(p, query(0, 1, 1.0));
  const double d2 = f(p, query(0, 2, 1.0));
  EXPECT_LT(d2, d1);
  EXPECT_GT(d2, d1 / 2.0);
  // A57: issue-bound singles; width scaling flattens as the cluster
  // bandwidth share becomes the limit.
  const double t1 = f(p, query(2, 1, 0.55));
  const double t2 = f(p, query(2, 2, 0.55));
  const double t4 = f(p, query(2, 4, 0.55));
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
  EXPECT_LT(t2 - t4, t1 - t2);  // diminishing returns
}

TEST_F(CostModelTest, CopyRespondsToBandwidthShare) {
  const CostFn f = copy_cost(cfg_);
  TaskParams p;
  p.p0 = 1 << 20;
  // Width-2 on Denver is bandwidth-bound, so shrinking the cluster share
  // from 20 to 14 GB/s must show up.
  const double full = f(p, query(0, 2, 1.0, 1.0));
  const double shared = f(p, query(0, 2, 1.0, 0.7));
  EXPECT_GT(shared, full * 1.2);
}

TEST_F(CostModelTest, CopyBecomesCpuBoundUnderDeepDvfs) {
  const CostFn f = copy_cost(cfg_);
  TaskParams p;
  p.p0 = 1 << 20;
  const double full = f(p, query(0, 1, 1.0));
  const double throttled = f(p, query(0, 1, 0.17));
  // At 17% frequency the issue rate, not bandwidth, limits: time rises.
  EXPECT_GT(throttled, full * 1.01);
}

TEST_F(CostModelTest, StencilL2SpillHurts) {
  const CostFn f = stencil_cost(cfg_);
  TaskParams small;
  small.p0 = 256;  // 2*8*256^2 = 1 MiB < 2 MiB L2
  TaskParams big;
  big.p0 = 1024;   // 16 MiB > L2
  const double t_small = f(small, query(2, 1, 0.55));
  const double t_big = f(big, query(2, 1, 0.55));
  const double per_point_small = t_small / (256.0 * 256.0);
  const double per_point_big = t_big / (1024.0 * 1024.0);
  EXPECT_GT(per_point_big, per_point_small * 1.5);
}

TEST_F(CostModelTest, FixedAndCommCosts) {
  const CostFn fx = fixed_cost(0.25);
  TaskParams p;
  EXPECT_DOUBLE_EQ(fx(p, query(0, 1, 1.0)), 0.25);

  const CostFn cm = comm_cost(10e-6, 5.0);
  TaskParams msg;
  msg.p0 = 5e9;  // 1 second of wire time at 5 GB/s
  const double t = cm(msg, query(0, 1, 1.0));
  EXPECT_GT(t, 1.0);
  TaskParams empty;
  EXPECT_GT(cm(empty, query(0, 1, 1.0)), 0.0);  // latency floor
}

TEST_F(CostModelTest, KmeansCostsScaleWithWork) {
  const CostFn map = kmeans_map_cost();
  TaskParams a;
  a.p0 = 1000; a.p1 = 8; a.p2 = 4;
  TaskParams b = a;
  b.p0 = 2000;
  EXPECT_NEAR(map(b, query(0, 1, 1.0)) / map(a, query(0, 1, 1.0)), 2.0, 1e-9);
  const CostFn red = kmeans_reduce_cost();
  TaskParams r;
  r.p0 = 64;
  EXPECT_GT(red(r, query(0, 1, 1.0)), 0.0);
}

TEST(Registry, PaperKernelsRegisterOnce) {
  TaskTypeRegistry reg;
  const PaperKernelIds ids = register_paper_kernels(reg);
  EXPECT_EQ(reg.size(), 7);
  EXPECT_EQ(reg.info(ids.matmul).name, "matmul");
  EXPECT_EQ(reg.find("stencil"), ids.stencil);
  EXPECT_EQ(reg.find("nope"), kInvalidTaskType);
  EXPECT_NE(reg.info(ids.comm).cost, nullptr);
  // Noise grows for shorter tasks (drives the paper's Fig. 8).
  EXPECT_GT(reg.noise_sigma(ids.matmul, 40e-6),
            reg.noise_sigma(ids.matmul, 1e-3));
}

TEST(Registry, DuplicateNameRejected) {
  TaskTypeRegistry reg;
  reg.register_type("x");
  EXPECT_THROW(reg.register_type("x"), PreconditionError);
}

}  // namespace
}  // namespace das::kernels
