// Parallel-vs-serial equality for the conservative windowed DES
// (sim/engine.cpp). The parallel mode (SimOptions::des_threads > 1) must
// reproduce the serial engine BITWISE: identical makespans, identical
// per-rank event counts, identical per-rank FNV-1a trace hashes (every
// processed event folded in order), for every policy, both dispatch paths
// (fused and forced-generic), multiple seeds, asymmetric per-rank
// topologies, and cross-rank delay edges. A tiny-lookahead case forces
// many small windows — the stress cell the sanitizer CI job leans on.

#include <gtest/gtest.h>

#include <vector>

#include "kernels/registry.hpp"
#include "platform/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "workloads/heat.hpp"

namespace das::sim {
namespace {

struct CellResult {
  double makespan = 0.0;
  double lookahead = 0.0;
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint64_t> events;

  bool operator==(const CellResult& o) const {
    return makespan == o.makespan && lookahead == o.lookahead &&
           hashes == o.hashes && events == o.events;
  }
};

class ParallelDesTest : public ::testing::Test {
 protected:
  ParallelDesTest()
      : tx2_(Topology::tx2()),
        haswell_(Topology::haswell20()),
        small_(Topology::symmetric(2, 3, 1.0)) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  /// Three scheduling domains with deliberately different shapes: a
  /// big.LITTLE part, a 20-core server node, and a small symmetric node.
  std::vector<RankSpec> asymmetric_ranks() const {
    return {RankSpec{&tx2_, nullptr}, RankSpec{&haswell_, nullptr},
            RankSpec{&small_, nullptr}};
  }

  Dag heat_dag(int ranks, double net_latency_s = 30e-6) const {
    workloads::HeatConfig cfg;
    cfg.rows = 96;
    cfg.cols = 48;
    cfg.ranks = ranks;
    cfg.iterations = 4;
    cfg.tasks_per_rank = 3;
    cfg.net_latency_s = net_latency_s;
    return workloads::make_heat_sim_dag(cfg, ids_.heat_compute, ids_.comm);
  }

  CellResult run_cell(const std::vector<RankSpec>& ranks, const Dag& dag,
                      Policy policy, int des_threads, bool force_generic,
                      std::uint64_t seed, int jobs = 1) {
    SimOptions o;
    o.seed = seed;
    o.des_threads = des_threads;
    o.force_generic_dispatch = force_generic;
    o.hash_traces = true;
    SimEngine eng(ranks, policy, registry_, o);
    CellResult res;
    for (int j = 0; j < jobs; ++j) res.makespan = eng.run(dag);
    res.lookahead = eng.lookahead_s();
    for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
      res.hashes.push_back(eng.trace_hash(r));
      res.events.push_back(eng.events_processed(r));
    }
    return res;
  }

  Topology tx2_, haswell_, small_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

/// The full equality grid: every catalog scenario x policy x dispatch
/// path x seed over three asymmetric ranks joined by cross-rank delay
/// edges — the golden-grid shape of sim_determinism_test, with parallel
/// windows standing in for the A/B lever.
TEST_F(ParallelDesTest, ThreeRankGridBitwiseEqual) {
  const Dag dag = heat_dag(3);
  const Topology* topos[] = {&tx2_, &haswell_, &small_};
  const Policy policies[] = {Policy::kRws, Policy::kFamC, Policy::kDamC,
                             Policy::kDamP};
  const std::uint64_t seeds[] = {kDefaultSeed, 1234u};
  for (const std::string& sc_name : scenario::catalog_names()) {
    const scenario::ScenarioSpec spec = *scenario::find_catalog(sc_name);
    std::vector<SpeedScenario> scenarios;
    for (const Topology* t : topos)
      scenarios.push_back(scenario::build(spec, *t));
    std::vector<RankSpec> ranks;
    for (std::size_t r = 0; r < 3; ++r)
      ranks.push_back(RankSpec{topos[r], &scenarios[r]});
    for (Policy p : policies) {
      for (bool generic : {false, true}) {
        for (std::uint64_t seed : seeds) {
          const CellResult serial = run_cell(ranks, dag, p, 1, generic, seed);
          const CellResult par = run_cell(ranks, dag, p, 3, generic, seed);
          EXPECT_TRUE(serial == par)
              << "scenario=" << sc_name << " policy=" << static_cast<int>(p)
              << " generic=" << generic << " seed=" << seed
              << " serial=" << serial.makespan
              << " parallel=" << par.makespan;
          EXPECT_GT(serial.makespan, 0.0);
          for (std::uint64_t ev : serial.events) EXPECT_GT(ev, 0u);
        }
      }
    }
  }
}

/// des_threads beyond the rank count clamps; results stay identical.
TEST_F(ParallelDesTest, OversubscribedThreadsClampToRanks) {
  const Dag dag = heat_dag(3);
  const auto ranks = asymmetric_ranks();
  const CellResult serial =
      run_cell(ranks, dag, Policy::kDamC, 1, false, kDefaultSeed);
  const CellResult par =
      run_cell(ranks, dag, Policy::kDamC, 16, false, kDefaultSeed);
  EXPECT_TRUE(serial == par);
}

/// Fail-stop faults are rank-local events inside the windowed protocol: a
/// per-rank FaultPlan (resolve_faults keeps core 0 of each rank alive, so
/// no rank ever leaves the protocol) must replay bitwise across serial and
/// parallel window execution — including the reclaim/re-release recovery.
TEST_F(ParallelDesTest, FailStopFaultsBitwiseEqualAcrossDesThreads) {
  const Dag dag = heat_dag(3);
  const Topology* topos[] = {&tx2_, &haswell_, &small_};

  // Clean serial probe sizes the onset so the kills land mid-run on every
  // rank's schedule.
  const CellResult clean =
      run_cell(asymmetric_ranks(), dag, Policy::kDamC, 1, false, kDefaultSeed);

  scenario::ScenarioSpec spec;
  spec.name = "parallel-fail";
  spec.faults.push_back(scenario::FaultSpec{
      .kind = scenario::FaultSpec::Kind::kFail,
      .cores = {},
      .cluster = scenario::FaultSpec::kNoCluster,
      .fraction = 0.25,
      .t_s = clean.makespan * 0.3,
      .duration_s = 0.0,
      .slowdown = 0.0});
  std::vector<FaultPlan> plans;
  for (const Topology* t : topos)
    plans.push_back(scenario::resolve_faults(spec, *t));
  std::vector<RankSpec> ranks;
  for (std::size_t r = 0; r < plans.size(); ++r)
    ranks.push_back(RankSpec{topos[r], nullptr, &plans[r]});

  struct FaultyRun {
    CellResult cell;
    std::uint64_t reexecuted = 0;
    int failed = 0;
  };
  const auto run_faulty = [&](int des_threads) {
    SimOptions o;
    o.seed = kDefaultSeed;
    o.des_threads = des_threads;
    o.hash_traces = true;
    SimEngine eng(ranks, Policy::kDamC, registry_, o);
    FaultyRun res;
    res.cell.makespan = eng.run(dag);
    res.cell.lookahead = eng.lookahead_s();
    for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
      res.cell.hashes.push_back(eng.trace_hash(r));
      res.cell.events.push_back(eng.events_processed(r));
    }
    res.reexecuted = eng.tasks_reexecuted();
    res.failed = eng.cores_failed();
    return res;
  };

  const FaultyRun serial = run_faulty(1);
  const FaultyRun par = run_faulty(3);
  // tx2 and small lose 2 cores each, haswell20 loses 5.
  EXPECT_EQ(serial.failed, 9);
  EXPECT_TRUE(serial.cell == par.cell);
  EXPECT_EQ(serial.reexecuted, par.reexecuted);
  EXPECT_EQ(serial.failed, par.failed);
  // And the faulty schedule is genuinely different from the clean one.
  EXPECT_NE(serial.cell.hashes, clean.hashes);
}

/// A single-rank engine has nothing to parallelize: des_threads is ignored
/// and the historical single-rank event loop runs unchanged.
TEST_F(ParallelDesTest, SingleRankIgnoresDesThreads) {
  const Dag dag = heat_dag(1);
  const std::vector<RankSpec> one = {RankSpec{&haswell_, nullptr}};
  const CellResult serial =
      run_cell(one, dag, Policy::kDamC, 1, false, kDefaultSeed);
  const CellResult par =
      run_cell(one, dag, Policy::kDamC, 4, false, kDefaultSeed);
  EXPECT_TRUE(serial == par);
}

/// Tiny cross-rank delay -> tiny lookahead -> many small windows with
/// boundary traffic in nearly every round. This is the schedule-stress
/// shape; under TSan it doubles as the data-race stress for the window
/// protocol.
TEST_F(ParallelDesTest, TinyLookaheadManyWindows) {
  const Dag dag = heat_dag(3, /*net_latency_s=*/1e-9);
  const auto ranks = asymmetric_ranks();
  const CellResult serial =
      run_cell(ranks, dag, Policy::kDamC, 1, false, kDefaultSeed);
  const CellResult par =
      run_cell(ranks, dag, Policy::kDamC, 3, false, kDefaultSeed);
  EXPECT_TRUE(serial == par);
  EXPECT_GT(serial.lookahead, 0.0);
  EXPECT_LT(serial.lookahead, 1e-6);  // the tiny latency really took effect
}

/// Back-to-back jobs on a persistent engine: the windowed protocol must
/// stay bitwise equal across the submit/wait boundary (virtual clock and
/// PTT state carry over between jobs).
TEST_F(ParallelDesTest, MultiJobPersistentEngineEqual) {
  const Dag dag = heat_dag(3);
  const auto ranks = asymmetric_ranks();
  const CellResult serial =
      run_cell(ranks, dag, Policy::kRwsmC, 1, false, kDefaultSeed, /*jobs=*/2);
  const CellResult par =
      run_cell(ranks, dag, Policy::kRwsmC, 3, false, kDefaultSeed, /*jobs=*/2);
  EXPECT_TRUE(serial == par);
}

/// The conservative lookahead is the minimum cross-rank edge delay over
/// all submitted DAGs, monotone under further submissions, and identical
/// however many threads run the windows.
TEST_F(ParallelDesTest, LookaheadTracksMinCrossRankDelay) {
  const auto ranks = asymmetric_ranks();
  SimOptions o;
  o.hash_traces = true;
  SimEngine eng(ranks, Policy::kDamC, registry_, o);
  EXPECT_TRUE(std::isinf(eng.lookahead_s()));  // no cross-rank edges yet
  eng.run(heat_dag(3, /*net_latency_s=*/50e-6));
  const double wide = eng.lookahead_s();
  EXPECT_GE(wide, 50e-6);  // latency is a floor under the wire delay
  eng.run(heat_dag(3, /*net_latency_s=*/2e-6));
  EXPECT_LT(eng.lookahead_s(), wide);  // monotone min over submissions
}

}  // namespace
}  // namespace das::sim
