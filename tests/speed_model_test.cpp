// Unit tests for the time-varying speed model: DVFS square wave, interference
// windows, bandwidth shares, and the throttle emulator arithmetic.

#include <gtest/gtest.h>

#include "platform/speed_model.hpp"
#include "platform/throttle.hpp"
#include "util/assert.hpp"

namespace das {
namespace {

class SpeedModelTest : public ::testing::Test {
 protected:
  Topology topo_ = Topology::tx2();
};

TEST_F(SpeedModelTest, BaseSpeedsWithoutEvents) {
  SpeedScenario s(topo_);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.speed(0, 0.0), 1.0);    // denver
  EXPECT_DOUBLE_EQ(s.speed(1, 123.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(2, 0.0), 0.55);   // a57
  EXPECT_DOUBLE_EQ(s.bandwidth_share(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.relative_speed(2, 0.0), 0.55);
}

TEST_F(SpeedModelTest, DvfsSquareWave) {
  SpeedScenario s(topo_);
  s.add_dvfs(DvfsSchedule{.cluster = 0, .period_s = 10.0, .duty_hi = 0.5,
                          .hi = 1.0, .lo = 0.2, .phase_s = 0.0});
  // HI during [0,5), LO during [5,10), repeating.
  EXPECT_DOUBLE_EQ(s.speed(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(0, 4.999), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(0, 5.0), 0.2);
  EXPECT_DOUBLE_EQ(s.speed(0, 9.999), 0.2);
  EXPECT_DOUBLE_EQ(s.speed(0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(0, 15.5), 0.2);
  // Other cluster untouched.
  EXPECT_DOUBLE_EQ(s.speed(3, 7.0), 0.55);
}

TEST_F(SpeedModelTest, DvfsPhaseShift) {
  SpeedScenario s(topo_);
  s.add_dvfs(DvfsSchedule{.cluster = 0, .period_s = 10.0, .duty_hi = 0.5,
                          .hi = 1.0, .lo = 0.2, .phase_s = 2.0});
  EXPECT_DOUBLE_EQ(s.speed(0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(0, 7.0), 0.2);
  // Negative scenario time folds into the wave consistently.
  EXPECT_DOUBLE_EQ(s.speed(0, 0.0), 0.2);  // t-phase = -2 -> pos = 8 -> LO
}

TEST_F(SpeedModelTest, InterferenceWindowAndCores) {
  SpeedScenario s(topo_);
  s.add_interference(InterferenceEvent{.cores = {0}, .t_start = 1.0,
                                       .t_end = 3.0, .cpu_share = 0.5});
  EXPECT_DOUBLE_EQ(s.speed(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.speed(0, 2.999), 0.5);
  EXPECT_DOUBLE_EQ(s.speed(0, 3.0), 1.0);  // t_end exclusive
  EXPECT_DOUBLE_EQ(s.speed(1, 2.0), 1.0);  // other core untouched
}

TEST_F(SpeedModelTest, EffectsCompose) {
  SpeedScenario s(topo_);
  s.add_dvfs(DvfsSchedule{.cluster = 0, .period_s = 10.0, .duty_hi = 0.5,
                          .hi = 1.0, .lo = 0.5});
  s.add_cpu_corunner(0);
  // During the LO phase with interference: 1.0 * 0.5 (dvfs) * 0.5 (share).
  EXPECT_DOUBLE_EQ(s.speed(0, 6.0), 0.25);
}

TEST_F(SpeedModelTest, MemCorunnerShrinksBandwidth) {
  SpeedScenario s(topo_);
  s.add_mem_corunner(0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(s.bandwidth_share(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.bandwidth_share(0, 2.0), 0.7);   // victim cluster
  EXPECT_DOUBLE_EQ(s.bandwidth_share(1, 2.0), 0.85);  // other cluster
  EXPECT_DOUBLE_EQ(s.speed(0, 2.0), 0.6);
  EXPECT_DOUBLE_EQ(s.bandwidth_share(0, 5.0), 1.0);
}

TEST_F(SpeedModelTest, CpuCorunnerLeavesBandwidth) {
  SpeedScenario s(topo_);
  s.add_cpu_corunner(0);
  EXPECT_DOUBLE_EQ(s.bandwidth_share(0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speed(0, 10.0), 0.5);
}

TEST_F(SpeedModelTest, ValidationRejectsBadInputs) {
  SpeedScenario s(topo_);
  EXPECT_THROW(s.add_dvfs(DvfsSchedule{.cluster = 9}), PreconditionError);
  EXPECT_THROW(s.add_interference(InterferenceEvent{.cores = {}}), PreconditionError);
  EXPECT_THROW(s.add_interference(InterferenceEvent{.cores = {99}}), PreconditionError);
  EXPECT_THROW(
      s.add_interference(InterferenceEvent{.cores = {0}, .cpu_share = 0.0}),
      PreconditionError);
  EXPECT_THROW(
      s.add_interference(InterferenceEvent{.cores = {0}, .t_start = 5.0, .t_end = 1.0}),
      PreconditionError);
}

TEST_F(SpeedModelTest, EmulatorDeficitArithmetic) {
  // A core at half speed owes exactly the work time again.
  EXPECT_EQ(SpeedEmulator::deficit_ns(1000, 0.5), 1000);
  EXPECT_EQ(SpeedEmulator::deficit_ns(1000, 1.0), 0);
  EXPECT_EQ(SpeedEmulator::deficit_ns(1000, 2.0), 0);  // never negative
  EXPECT_EQ(SpeedEmulator::deficit_ns(0, 0.5), 0);
  EXPECT_EQ(SpeedEmulator::deficit_ns(900, 0.25), 2700);
}

TEST_F(SpeedModelTest, EmulatorMapsAbsoluteTimeToScenarioTime) {
  SpeedScenario s(topo_);
  s.add_cpu_corunner(0, /*t0=*/1.0, /*t1=*/2.0);
  SpeedEmulator em(s, /*epoch_ns=*/1'000'000'000);
  EXPECT_DOUBLE_EQ(em.scenario_time(1'000'000'000), 0.0);
  EXPECT_DOUBLE_EQ(em.relative_speed(0, 1'000'000'000), 1.0);
  EXPECT_DOUBLE_EQ(em.relative_speed(0, 2'500'000'000), 0.5);  // t=1.5s
  // A57 relative speed is its base ratio.
  EXPECT_DOUBLE_EQ(em.relative_speed(2, 1'000'000'000), 0.55);
}

}  // namespace
}  // namespace das
