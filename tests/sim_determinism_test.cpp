// Golden-value determinism pin for the discrete-event engine.
//
// The simulator's contract is that a virtual makespan is a pure function of
// (seed, scenario, policy, DAG, topology) — bit for bit, not approximately.
// Every hot-path optimization (idle-core sets, victim bitmaps, slot-indexed
// jobs, ring-buffer queues, CSR fan-out) must preserve the event and RNG
// streams exactly; this test records the makespan of every catalog scenario
// x {RWS, DAM-C, DAM-P, dHEFT} x two seeds as a hexfloat golden and fails
// loudly on any perturbation.
//
// If a change INTENTIONALLY alters the event stream (a new scheduling
// feature, a semantic fix), regenerate the table:
//   DAS_PRINT_GOLDENS=1 ./sim_determinism_test
// and paste the printed initializer over kGoldens below — after convincing
// yourself the perturbation is intended, because every figure the repo
// reproduces moves with it.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/fused.hpp"
#include "kernels/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

constexpr std::uint64_t kSeeds[] = {42, 2020};
const Policy kPolicies[] = {Policy::kRws, Policy::kDamC, Policy::kDamP,
                            Policy::kDheft};

/// One pinned cell: catalog scenario x policy x seed -> hexfloat makespan.
struct Golden {
  const char* scenario;
  const char* policy;
  std::uint64_t seed;
  const char* makespan_hex;
};

// Generated with DAS_PRINT_GOLDENS=1 (see the header comment).
const Golden kGoldens[] = {
    {"clean", "RWS", 42, "0x1.1072b10c38e2dp+2"},
    {"clean", "RWS", 2020, "0x1.13e7dba0f81fep+2"},
    {"clean", "DAM-C", 42, "0x1.6a2ba81b04e5bp+1"},
    {"clean", "DAM-C", 2020, "0x1.69c080b9d2cb7p+1"},
    {"clean", "DAM-P", 42, "0x1.7481b857dd6eep+1"},
    {"clean", "DAM-P", 2020, "0x1.746d0d15d16ep+1"},
    {"clean", "dHEFT", 42, "0x1.94131fa585301p+1"},
    {"clean", "dHEFT", 2020, "0x1.93efcef73cd59p+1"},
    {"dvfs-wave", "RWS", 42, "0x1.446852513715cp+2"},
    {"dvfs-wave", "RWS", 2020, "0x1.4284ad6498e2ap+2"},
    {"dvfs-wave", "DAM-C", 42, "0x1.93c55e3abcf2p+1"},
    {"dvfs-wave", "DAM-C", 2020, "0x1.935ca8548bee9p+1"},
    {"dvfs-wave", "DAM-P", 42, "0x1.a8c8bacfe6817p+1"},
    {"dvfs-wave", "DAM-P", 2020, "0x1.a88e9e00584adp+1"},
    {"dvfs-wave", "dHEFT", 42, "0x1.e696098c8b3fbp+1"},
    {"dvfs-wave", "dHEFT", 2020, "0x1.e5208063cf244p+1"},
    {"interference-burst", "RWS", 42, "0x1.10df85b9a190ap+2"},
    {"interference-burst", "RWS", 2020, "0x1.1059a4977f97ep+2"},
    {"interference-burst", "DAM-C", 42, "0x1.907c001e5be36p+1"},
    {"interference-burst", "DAM-C", 2020, "0x1.901df7c1652bfp+1"},
    {"interference-burst", "DAM-P", 42, "0x1.94825660761a2p+1"},
    {"interference-burst", "DAM-P", 2020, "0x1.947eed179685ep+1"},
    {"interference-burst", "dHEFT", 42, "0x1.e623483201037p+1"},
    {"interference-burst", "dHEFT", 2020, "0x1.e2890c38286dp+1"},
    {"ramp-down", "RWS", 42, "0x1.1072b10c38e2dp+2"},
    {"ramp-down", "RWS", 2020, "0x1.13e7dba0f81fep+2"},
    {"ramp-down", "DAM-C", 42, "0x1.6a2ba81b04e5bp+1"},
    {"ramp-down", "DAM-C", 2020, "0x1.69c080b9d2cb7p+1"},
    {"ramp-down", "DAM-P", 42, "0x1.7481b857dd6eep+1"},
    {"ramp-down", "DAM-P", 2020, "0x1.746d0d15d16ep+1"},
    {"ramp-down", "dHEFT", 42, "0x1.94131fa585301p+1"},
    {"ramp-down", "dHEFT", 2020, "0x1.93efcef73cd59p+1"},
    {"random-churn", "RWS", 42, "0x1.13457354cf543p+2"},
    {"random-churn", "RWS", 2020, "0x1.127d3fd2b8d41p+2"},
    {"random-churn", "DAM-C", 42, "0x1.6b18701015079p+1"},
    {"random-churn", "DAM-C", 2020, "0x1.6aa8e076fff9fp+1"},
    {"random-churn", "DAM-P", 42, "0x1.75bd48e7bad62p+1"},
    {"random-churn", "DAM-P", 2020, "0x1.75c2c507976e4p+1"},
    {"random-churn", "dHEFT", 42, "0x1.992e0f9f10737p+1"},
    {"random-churn", "dHEFT", 2020, "0x1.99cc883b17f65p+1"},
    {"phase-flip", "RWS", 42, "0x1.bf2ca58f7e232p+2"},
    {"phase-flip", "RWS", 2020, "0x1.bdead2c2bdf9ep+2"},
    {"phase-flip", "DAM-C", 42, "0x1.ede1d61910718p+1"},
    {"phase-flip", "DAM-C", 2020, "0x1.ee2968e8ebe5dp+1"},
    {"phase-flip", "DAM-P", 42, "0x1.fc45a0c302fbbp+1"},
    {"phase-flip", "DAM-P", 2020, "0x1.fcbc1d80c51fdp+1"},
    {"phase-flip", "dHEFT", 42, "0x1.2c3c32b3061cp+2"},
    {"phase-flip", "dHEFT", 2020, "0x1.2bfee1b240344p+2"},
    {"fail-stop", "RWS", 42, "0x1.0e0c51b497b16p+2"},
    {"fail-stop", "RWS", 2020, "0x1.0b5701905289ep+2"},
    {"fail-stop", "DAM-C", 42, "0x1.a44383998ae8ap+1"},
    {"fail-stop", "DAM-C", 2020, "0x1.a3b3779c8f358p+1"},
    {"fail-stop", "DAM-P", 42, "0x1.b1545c2a1bc8ap+1"},
    {"fail-stop", "DAM-P", 2020, "0x1.b13f1d0c71b48p+1"},
    {"fail-stop", "dHEFT", 42, "0x1.cc9f094c067ebp+1"},
    {"fail-stop", "dHEFT", 2020, "0x1.cd7fcc9585fbep+1"},
    {"straggler-tail", "RWS", 42, "0x1.618dfadab2d47p+2"},
    {"straggler-tail", "RWS", 2020, "0x1.684e00b427846p+2"},
    {"straggler-tail", "DAM-C", 42, "0x1.a2e6f99af88f8p+1"},
    {"straggler-tail", "DAM-C", 2020, "0x1.a33f4117d941bp+1"},
    {"straggler-tail", "DAM-P", 42, "0x1.af54c4005b02ep+1"},
    {"straggler-tail", "DAM-P", 2020, "0x1.afecee7bd9c46p+1"},
    {"straggler-tail", "dHEFT", 42, "0x1.d92c0303a3cc2p+1"},
    {"straggler-tail", "dHEFT", 2020, "0x1.d97377c02d165p+1"},
};

// Per-job makespans of the fixed 4-job DAM-C stream below, ";"-joined.
const char kStreamGolden[] =
    "0x1.07871df1b9113p-2;0x1.0345a3021606fp-2;0x1.e365a76725b9bp-3;0x1.fffe073662962p-3;";

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// One cell's full observable footprint, for the fused-vs-generic A/B.
struct CellResult {
  double makespan = 0.0;
  std::uint64_t events = 0;
  std::string variant;
};

CellResult run_cell_full(const std::string& scenario_name, Policy policy,
                         std::uint64_t seed, bool force_generic) {
  const Topology topo = Topology::tx2();
  TaskTypeRegistry registry;
  const kernels::PaperKernelIds ids = kernels::register_paper_kernels(registry);
  const scenario::ScenarioSpec spec = *scenario::find_catalog(scenario_name);
  const SpeedScenario sc = scenario::build(spec, topo);
  // Passed for EVERY cell: an empty plan must leave the historical goldens
  // byte-for-byte unchanged, and the fail-stop entry pins the reclaim /
  // re-release machinery bitwise (re-executions included).
  const FaultPlan faults = scenario::resolve_faults(spec, topo);

  sim::SimOptions opts;
  opts.seed = seed;
  opts.force_generic_dispatch = force_generic;
  sim::SimEngine eng(topo, policy, registry, opts, &sc, &faults);
  // 16000 matmul tasks, one high-priority critical task per layer: exercises
  // the inbox (steal-exempt) path, WSQ pushes and steals, and — under the
  // moldable policies — wide assembly places. The makespan (~4 virtual
  // seconds) deliberately crosses the catalog's dynamics (interference
  // bursts from t=1 s, the 5 s DVFS wave's half-period flip, the ramps), so
  // the time-varying speed surface feeds the cost model and the scenarios
  // pin DIFFERENT goldens — a run that never leaves the clean region would
  // let a scenario-sampling regression through.
  const Dag dag = workloads::make_synthetic_dag(
      workloads::paper_matmul_spec(ids.matmul, 6, 0.5));
  CellResult r;
  r.makespan = eng.run(dag);
  r.events = eng.events_processed();
  r.variant = eng.dispatch_variant();
  return r;
}

double run_cell(const std::string& scenario_name, Policy policy,
                std::uint64_t seed) {
  return run_cell_full(scenario_name, policy, seed, /*force_generic=*/false)
      .makespan;
}

TEST(SimDeterminism, GoldenMakespansAcrossCatalogPoliciesAndSeeds) {
  const bool print = std::getenv("DAS_PRINT_GOLDENS") != nullptr;
  std::vector<Golden> measured;
  std::vector<std::string> hexes;  // stable storage for measured.makespan_hex
  hexes.reserve(std::size(kSeeds) * std::size(kPolicies) *
                scenario::catalog_names().size());

  for (const std::string& sc : scenario::catalog_names()) {
    for (const Policy p : kPolicies) {
      for (const std::uint64_t seed : kSeeds) {
        const double m = run_cell(sc, p, seed);
        hexes.push_back(hex(m));
        measured.push_back(
            Golden{sc.c_str(), policy_name(p), seed, hexes.back().c_str()});
        if (print)
          std::printf("    {\"%s\", \"%s\", %llu, \"%s\"},\n", sc.c_str(),
                      policy_name(p), static_cast<unsigned long long>(seed),
                      hexes.back().c_str());
      }
    }
  }
  if (print) GTEST_SKIP() << "golden table printed, comparison skipped";

  ASSERT_EQ(measured.size(), std::size(kGoldens))
      << "catalog/policy/seed grid changed — regenerate the golden table";
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_STREQ(measured[i].makespan_hex, kGoldens[i].makespan_hex)
        << "scenario=" << kGoldens[i].scenario
        << " policy=" << kGoldens[i].policy << " seed=" << kGoldens[i].seed
        << ": the virtual-time event or RNG stream was perturbed";
  }
}

// The fused (policy x cost-model) engine instantiations and the type-erased
// generic loop must be the SAME simulator, bit for bit: every catalog
// scenario x ALL EIGHT policies x both seeds, run once with the default
// dispatch (fused engages — asserted) and once pinned to the generic path
// via SimOptions::force_generic_dispatch. Identical hexfloat makespans and
// identical event counts or the single-implementation construction
// (core/cost_expr.hpp + core/policy.hpp's *_static templates) has been
// broken by a divergent edit to one path.
TEST(SimDeterminism, FusedMatchesGenericBitwiseAcrossFullPolicyGrid) {
  const Policy all_policies[] = {Policy::kRws,  Policy::kRwsmC, Policy::kFa,
                                 Policy::kFamC, Policy::kDa,    Policy::kDamC,
                                 Policy::kDamP, Policy::kDheft};
  TaskTypeRegistry reg;
  kernels::register_paper_kernels(reg);
  for (const std::string& sc : scenario::catalog_names()) {
    for (const Policy p : all_policies) {
      for (const std::uint64_t seed : kSeeds) {
        const CellResult fused = run_cell_full(sc, p, seed, false);
        const CellResult generic = run_cell_full(sc, p, seed, true);
        // The A/B is only meaningful if the fast path actually engaged and
        // the lever actually pinned the slow one.
        ASSERT_EQ(fused.variant,
                  exec::plan_dispatch(p, reg).variant)
            << "policy=" << policy_name(p)
            << ": catalog registry did not select the fused loop";
        ASSERT_EQ(generic.variant, std::string("generic"));
        EXPECT_STREQ(hex(fused.makespan).c_str(), hex(generic.makespan).c_str())
            << "scenario=" << sc << " policy=" << policy_name(p)
            << " seed=" << seed << ": fused and generic dispatch diverged";
        EXPECT_EQ(fused.events, generic.events)
            << "scenario=" << sc << " policy=" << policy_name(p)
            << " seed=" << seed << ": event streams differ in length";
      }
    }
  }
}

// A fixed multi-job submission trace must replay bitwise too: the job-slot
// table and queue rework touch the interleave machinery, not just the
// single-DAG path.
TEST(SimDeterminism, GoldenMakespanForInterleavedJobStream) {
  const Topology topo = Topology::tx2();
  TaskTypeRegistry registry;
  const kernels::PaperKernelIds ids = kernels::register_paper_kernels(registry);

  auto run_stream = [&] {
    sim::SimOptions opts;
    opts.seed = 42;
    sim::SimEngine eng(topo, Policy::kDamC, registry, opts);
    const Dag dag = workloads::make_synthetic_dag(
        workloads::paper_copy_spec(ids.copy, 4, 0.02));
    std::vector<JobId> jobs;
    for (int j = 0; j < 4; ++j)
      jobs.push_back(eng.submit(dag, 0.003 * j));
    std::string out;
    for (const JobId id : jobs) out += hex(eng.wait(id)) + ";";
    return out;
  };

  const std::string first = run_stream();
  EXPECT_EQ(first, run_stream()) << "same trace, same seed, different result";
  if (std::getenv("DAS_PRINT_GOLDENS") != nullptr) {
    std::printf("stream golden: %s\n", first.c_str());
    GTEST_SKIP();
  }
  EXPECT_EQ(first, kStreamGolden)
      << "the multi-job interleave path was perturbed";
}

}  // namespace
}  // namespace das
