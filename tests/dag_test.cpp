// Unit tests for the DAG representation and the synthetic layered generator
// of paper §4.2.2.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dag.hpp"
#include "util/assert.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

constexpr TaskTypeId kT = 0;

TEST(Dag, BuilderBasics) {
  Dag d;
  const NodeId a = d.add_node(kT, Priority::kHigh);
  const NodeId b = d.add_node(kT);
  const NodeId c = d.add_node(kT);
  d.add_edge(a, b);
  d.add_edge(a, c, 0.5);
  EXPECT_EQ(d.num_nodes(), 3);
  EXPECT_EQ(d.num_edges(), 2u);
  EXPECT_EQ(d.successors(a).size(), 2u);
  EXPECT_DOUBLE_EQ(d.successors(a)[1].delay_s, 0.5);
  // The same answers after CSR compaction, and for edges staged on top of a
  // sealed arena (the dynamic-DAG overflow path).
  d.seal();
  EXPECT_EQ(d.successors(a).size(), 2u);
  EXPECT_DOUBLE_EQ(d.successors(a)[1].delay_s, 0.5);
  d.add_edge(b, c, 0.25);
  EXPECT_EQ(d.num_edges(), 3u);
  EXPECT_EQ(d.successors(b).size(), 1u);
  EXPECT_DOUBLE_EQ(d.successors(b)[0].delay_s, 0.25);
  EXPECT_EQ(d.node(b).num_predecessors, 1);
  EXPECT_EQ(d.node(a).priority, Priority::kHigh);
  EXPECT_EQ(d.node(b).priority, Priority::kLow);
  EXPECT_EQ(d.roots(), std::vector<NodeId>{a});
}

TEST(Dag, RejectsBadEdges) {
  Dag d;
  const NodeId a = d.add_node(kT);
  EXPECT_THROW(d.add_edge(a, a), PreconditionError);
  EXPECT_THROW(d.add_edge(a, 5), PreconditionError);
  EXPECT_THROW(d.add_edge(-1, a), PreconditionError);
  EXPECT_THROW(d.add_edge(a, 0, -1.0), PreconditionError);
}

TEST(Dag, AcyclicityDetection) {
  Dag d;
  const NodeId a = d.add_node(kT);
  const NodeId b = d.add_node(kT);
  const NodeId c = d.add_node(kT);
  d.add_edge(a, b);
  d.add_edge(b, c);
  EXPECT_TRUE(d.is_acyclic());
  d.add_edge(c, a);  // closes a cycle
  EXPECT_FALSE(d.is_acyclic());
  EXPECT_THROW(d.topological_order(), PreconditionError);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag d;
  std::vector<NodeId> n;
  for (int i = 0; i < 8; ++i) n.push_back(d.add_node(kT));
  d.add_edge(n[0], n[3]);
  d.add_edge(n[1], n[3]);
  d.add_edge(n[3], n[5]);
  d.add_edge(n[2], n[5]);
  d.add_edge(n[5], n[7]);
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 8u);
  auto pos = [&](NodeId x) {
    return std::find(order.begin(), order.end(), x) - order.begin();
  };
  EXPECT_LT(pos(n[0]), pos(n[3]));
  EXPECT_LT(pos(n[1]), pos(n[3]));
  EXPECT_LT(pos(n[3]), pos(n[5]));
  EXPECT_LT(pos(n[5]), pos(n[7]));
}

TEST(Dag, ParallelismMatchesPaperDefinition) {
  // The paper's Fig. 1: 12 tasks, longest path 3 -> parallelism 4. Build the
  // same shape: 3 layers of 4, critical chain through one node per layer.
  Dag d;
  std::vector<std::vector<NodeId>> layer(3);
  for (int l = 0; l < 3; ++l)
    for (int j = 0; j < 4; ++j)
      layer[static_cast<std::size_t>(l)].push_back(d.add_node(kT));
  for (int l = 0; l + 1 < 3; ++l)
    for (NodeId next : layer[static_cast<std::size_t>(l) + 1])
      d.add_edge(layer[static_cast<std::size_t>(l)][0], next);
  EXPECT_EQ(d.longest_path_nodes(), 3);
  EXPECT_DOUBLE_EQ(d.dag_parallelism(), 4.0);
}

TEST(Dag, EmptyAndSingleton) {
  Dag d;
  EXPECT_EQ(d.longest_path_nodes(), 0);
  EXPECT_DOUBLE_EQ(d.dag_parallelism(), 0.0);
  d.add_node(kT);
  EXPECT_EQ(d.longest_path_nodes(), 1);
  EXPECT_DOUBLE_EQ(d.dag_parallelism(), 1.0);
}

class SyntheticDagTest : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticDagTest, StructureMatchesSpec) {
  const int P = GetParam();
  workloads::SyntheticDagSpec spec;
  spec.type = kT;
  spec.parallelism = P;
  spec.total_tasks = 20 * P;
  const Dag d = workloads::make_synthetic_dag(spec);

  EXPECT_EQ(d.num_nodes(), 20 * P);
  EXPECT_TRUE(d.is_acyclic());
  // Exactly one high-priority (critical) task per layer.
  int high = 0;
  for (NodeId i = 0; i < d.num_nodes(); ++i)
    if (d.node(i).priority == Priority::kHigh) ++high;
  EXPECT_EQ(high, 20);
  // DAG parallelism equals P by the paper's definition.
  EXPECT_DOUBLE_EQ(d.dag_parallelism(), P);
  // Only the critical task releases the next layer: its successor count is P
  // (except the last layer's).
  for (NodeId i = 0; i < d.num_nodes(); ++i) {
    const DagNode& n = d.node(i);
    const bool last_layer = i >= (20 - 1) * P;
    if (n.priority == Priority::kHigh && !last_layer) {
      EXPECT_EQ(d.successors(i).size(), static_cast<std::size_t>(P));
    } else {
      EXPECT_TRUE(d.successors(i).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, SyntheticDagTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SyntheticDag, PaperSpecsCarryPaperParameters) {
  const auto mm = workloads::paper_matmul_spec(kT, 3, 0.1);
  EXPECT_EQ(mm.total_tasks, 3200);
  EXPECT_DOUBLE_EQ(mm.params.p0, 64.0);
  const auto cp = workloads::paper_copy_spec(kT, 2, 1.0);
  EXPECT_EQ(cp.total_tasks, 10000);
  EXPECT_DOUBLE_EQ(cp.params.p0, 1024.0 * 1024.0);
  const auto st = workloads::paper_stencil_spec(kT, 6, 0.5);
  EXPECT_EQ(st.total_tasks, 10000);
  EXPECT_DOUBLE_EQ(st.params.p0, 1024.0);
}

TEST(SyntheticDag, RejectsInvalidSpec) {
  workloads::SyntheticDagSpec spec;  // type unset
  EXPECT_THROW(workloads::make_synthetic_dag(spec), PreconditionError);
}

}  // namespace
}  // namespace das
