// Tests for the concurrent job service (submit/wait/drain across both
// engines): arrival-flag parsing, sim-backend determinism of a fixed job
// stream (same seed + arrival trace => bitwise-identical per-job makespans),
// rt/sim parity on a 2-job interleave, drain ordering, reset_stats, and a
// multi-submitter stress test that exercises the rt runtime's thread-safe
// submission path under the TSan CI job.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

class JobServiceTest : public ::testing::Test {
 protected:
  JobServiceTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag small_dag(int parallelism = 3, int tasks = 60, WorkFn work = {}) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = 16;  // small tiles: fast
    spec.work = std::move(work);
    return workloads::make_synthetic_dag(spec);
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST(ArrivalParse, RoundTripsAndRejectsMalformed) {
  const auto poisson = cli::parse_arrival("poisson:200");
  ASSERT_TRUE(poisson.has_value());
  EXPECT_EQ(poisson->kind, cli::Arrival::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(poisson->rate_hz, 200.0);

  const auto fixed = cli::parse_arrival("fixed:0.005");
  ASSERT_TRUE(fixed.has_value());
  EXPECT_EQ(fixed->kind, cli::Arrival::Kind::kFixed);
  EXPECT_DOUBLE_EQ(fixed->gap_s, 0.005);

  EXPECT_FALSE(cli::parse_arrival("").has_value());
  EXPECT_FALSE(cli::parse_arrival("poisson").has_value());
  EXPECT_FALSE(cli::parse_arrival("poisson:").has_value());
  EXPECT_FALSE(cli::parse_arrival("poisson:0").has_value());
  EXPECT_FALSE(cli::parse_arrival("poisson:-3").has_value());
  EXPECT_FALSE(cli::parse_arrival("poisson:2x").has_value());
  EXPECT_FALSE(cli::parse_arrival("uniform:2").has_value());
}

TEST_F(JobServiceTest, SimJobStreamIsBitwiseDeterministic) {
  // Acceptance criterion: the same 8-job stream (fixed seed, fixed arrival
  // trace) submitted twice yields bitwise-identical per-job makespans.
  auto run_stream = [&] {
    ExecutorConfig config;
    config.seed = 7;
    auto exec =
        make_executor(Backend::kSim, topo_, Policy::kDamC, registry_, config);
    std::vector<Dag> dags;
    for (int j = 0; j < 8; ++j) dags.push_back(small_dag(3, 40));
    std::vector<JobId> ids;
    double offset = 0.0;
    for (int j = 0; j < 8; ++j) {
      offset += 0.003 * (j + 1);  // fixed, overlapping arrival trace
      SubmitOptions opts;
      opts.arrival_offset_s = offset;
      ids.push_back(exec->submit(dags[static_cast<std::size_t>(j)], opts));
    }
    std::vector<double> makespans;
    for (JobId id : ids) makespans.push_back(exec->wait(id).makespan_s);
    return makespans;
  };
  const std::vector<double> a = run_stream();
  const std::vector<double> b = run_stream();
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t j = 0; j < a.size(); ++j)
    EXPECT_DOUBLE_EQ(a[j], b[j]) << "job " << j;
}

TEST_F(JobServiceTest, TwoJobInterleaveParityAcrossBackends) {
  // The same 2-job interleave completes on both engines with identical
  // conservation properties: every task of both jobs executes exactly once
  // and both jobs report a positive latency.
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_);
    const Dag d1 = small_dag(2, 40);
    const Dag d2 = small_dag(4, 60);
    const JobId j1 = exec->submit(d1);
    const JobId j2 = exec->submit(d2);
    EXPECT_NE(j1, j2);
    const RunResult r2 = exec->wait(j2);  // out of submission order
    const RunResult r1 = exec->wait(j1);
    EXPECT_EQ(r1.job, j1);
    EXPECT_EQ(r2.job, j2);
    EXPECT_EQ(r1.tasks, d1.num_nodes());
    EXPECT_EQ(r2.tasks, d2.num_nodes());
    EXPECT_GT(r1.makespan_s, 0.0);
    EXPECT_GT(r2.makespan_s, 0.0);
    // Both jobs' tasks landed in the shared (accumulating) stats.
    EXPECT_EQ(exec->stats().tasks_total(), d1.num_nodes() + d2.num_nodes());
  }
}

TEST_F(JobServiceTest, DrainReturnsAllJobsInSubmissionOrder) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_);
  std::vector<Dag> dags;
  for (int j = 0; j < 4; ++j) dags.push_back(small_dag(2, 20));
  std::vector<JobId> ids;
  for (const Dag& dag : dags) ids.push_back(exec->submit(dag));
  const std::vector<RunResult> results = exec->drain();
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t j = 0; j < results.size(); ++j) {
    EXPECT_EQ(results[j].job, ids[j]);
    EXPECT_EQ(results[j].tasks, dags[j].num_nodes());
  }
  EXPECT_TRUE(exec->drain().empty());  // nothing left in flight
}

TEST_F(JobServiceTest, ArrivalOffsetDelaysReleaseOnSim) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_);
  const Dag dag = small_dag(2, 20);
  SubmitOptions opts;
  opts.arrival_offset_s = 0.5;
  const JobId id = exec->submit(dag, opts);
  const RunResult r = exec->wait(id);
  EXPECT_DOUBLE_EQ(r.arrival_s, 0.5);
  EXPECT_GE(exec->now(), 0.5);
  // The latency excludes the pre-release offset: a short job is much
  // shorter than its arrival delay.
  EXPECT_LT(r.makespan_s, 0.5);
}

TEST_F(JobServiceTest, RtPacesFutureArrivalsInWallTime) {
  // A future arrival on the real runtime is paced by the service layer's
  // wall-clock timer thread instead of being rejected: the job releases
  // ~offset seconds after submit and completes normally.
  auto exec = make_executor(Backend::kRt, topo_, Policy::kRws, registry_);
  const Dag dag = small_dag(2, 20);
  const double t0 = exec->now();
  SubmitOptions opts;
  opts.arrival_offset_s = 0.05;
  const JobId id = exec->submit(dag, opts);
  const RunResult r = exec->wait(id);
  EXPECT_EQ(r.tasks, dag.num_nodes());
  // Released no earlier than the requested offset (scenario clock ticks in
  // wall time on rt).
  EXPECT_GE(r.arrival_s - t0, 0.0);
  EXPECT_GE(exec->now() - t0, 0.05);
  EXPECT_EQ(exec->run(dag).tasks, dag.num_nodes());  // still serviceable
}

TEST_F(JobServiceTest, WaitingAnUnknownJobThrows) {
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    auto exec = make_executor(backend, topo_, Policy::kRws, registry_);
    EXPECT_THROW(exec->wait(JobId{1234}), PreconditionError);
    const RunResult r = exec->run(small_dag(2, 20));
    EXPECT_THROW(exec->wait(r.job), PreconditionError);  // already waited
  }
}

TEST_F(JobServiceTest, ResetStatsZerosCountersButKeepsThePtt) {
  for (Backend backend : all_backends()) {
    SCOPED_TRACE(backend_name(backend));
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_);
    exec->run(small_dag(3, 60));
    ASSERT_EQ(exec->stats().tasks_total(), 60);
    ASSERT_GT(exec->stats().total_busy_s(), 0.0);

    exec->reset_stats();
    EXPECT_EQ(exec->stats().tasks_total(), 0);
    EXPECT_DOUBLE_EQ(exec->stats().total_busy_s(), 0.0);
    EXPECT_DOUBLE_EQ(exec->stats().elapsed_s(), 0.0);
    // The learned PTT survives: only the counters are zeroed.
    std::uint64_t samples = 0;
    const Ptt& ptt = exec->ptt().table(ids_.matmul);
    for (int pid = 0; pid < topo_.num_places(); ++pid)
      samples += ptt.samples(pid);
    EXPECT_GT(samples, 0u);

    // Counters restart cleanly: the next run counts from zero, and elapsed
    // covers only post-reset execution (not the engine clock, which still
    // includes the pre-reset run).
    const RunResult r = exec->run(small_dag(2, 20));
    EXPECT_EQ(r.stats[0].tasks_total, 20);
    EXPECT_GT(exec->stats().elapsed_s(), 0.0);
    EXPECT_LT(exec->stats().elapsed_s(), exec->now());
  }
}

TEST_F(JobServiceTest, TenThousandJobStreamStaysBounded) {
  // Long-lived service regression guard: wait() must retire the finished
  // job's record block, or a 10k-job stream accumulates 10k TaskRec[]
  // blocks in the jobs_ map. jobs_in_flight() IS the map's size (the
  // documented introspection point), so asserting it bounded asserts the
  // memory is bounded too.
  constexpr int kJobs = 10000;
  constexpr int kWindow = 8;  // jobs kept in flight concurrently

  // rt backend: tiny one-task jobs through the thread pool.
  {
    rt::Runtime rt(topo_, Policy::kRws, registry_);
    Dag dag;
    dag.add_node(ids_.matmul, Priority::kLow, {}, [](const ExecContext&) {});
    std::vector<JobId> window;
    for (int j = 0; j < kJobs; ++j) {
      window.push_back(rt.submit(dag));
      ASSERT_LE(rt.jobs_in_flight(), kWindow);
      if (static_cast<int>(window.size()) == kWindow) {
        for (JobId id : window) rt.wait(id);
        window.clear();
        ASSERT_EQ(rt.jobs_in_flight(), 0) << "job map grew at job " << j;
      }
    }
    for (JobId id : window) rt.wait(id);
    EXPECT_EQ(rt.jobs_in_flight(), 0);
    EXPECT_EQ(rt.stats().tasks_total(), kJobs);
  }

  // sim backend: the same stream in virtual time.
  {
    sim::SimOptions opts;
    opts.noise = false;
    sim::SimEngine engine(topo_, Policy::kRws, registry_, opts);
    Dag dag;
    TaskParams p;
    p.p0 = 16;
    dag.add_node(ids_.matmul, Priority::kLow, p);
    for (int j = 0; j < kJobs; ++j) {
      engine.wait(engine.submit(dag));
      ASSERT_EQ(engine.jobs_in_flight(), 0) << "job map grew at job " << j;
    }
    EXPECT_EQ(engine.stats().tasks_total(), kJobs);
  }
}

TEST_F(JobServiceTest, MultiSubmitterStressOnRtRuntime) {
  // Several submitter threads drive ONE rt executor concurrently; every
  // task of every job must run exactly once and every wait() must resolve.
  // This is the TSan coverage for the thread-safe submission path.
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 3;
  constexpr int kTasksPerJob = 40;
  auto exec = make_executor(Backend::kRt, topo_, Policy::kDamC, registry_);

  std::atomic<std::int64_t> executed{0};
  const WorkFn work = [&executed](const ExecContext& ctx) {
    if (ctx.rank == 0) executed.fetch_add(1, std::memory_order_relaxed);
    busy_wait_ns(2000);
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<Dag> dags;  // outlive the jobs this thread waits on
      dags.reserve(kJobsPerThread);
      // Parallelism divides kTasksPerJob so every job has exactly 40 nodes.
      constexpr int kParallelism[] = {2, 4, 5};
      for (int j = 0; j < kJobsPerThread; ++j)
        dags.push_back(small_dag(kParallelism[(t + j) % 3], kTasksPerJob, work));
      std::vector<JobId> ids;
      for (const Dag& dag : dags) ids.push_back(exec->submit(dag));
      for (JobId id : ids) {
        const RunResult r = exec->wait(id);
        if (r.tasks != kTasksPerJob || r.makespan_s <= 0.0)
          failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(executed.load(), kThreads * kJobsPerThread * kTasksPerJob);
  EXPECT_EQ(exec->stats().tasks_total(),
            kThreads * kJobsPerThread * kTasksPerJob);
}

}  // namespace
}  // namespace das
