// Tests for the net front-end (net/wire.hpp + net/service.hpp): DAG wire
// round-trips, and remote submission through a served executor rank
// producing results identical to running the same executor locally (the
// determinism acceptance criterion for scheduler-as-a-service).

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "net/service.hpp"
#include "net/wire.hpp"
#include "net/world.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

class NetServiceTest : public ::testing::Test {
 protected:
  NetServiceTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag paper_dag(int parallelism = 4, int tasks = 40) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = 16;
    return workloads::make_synthetic_dag(spec);
  }

  std::unique_ptr<Executor> fresh_sim() {
    return make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                         ExecutorConfig::builder().seed(2020).build());
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_F(NetServiceTest, DagWireRoundTripPreservesStructure) {
  Dag dag = paper_dag(3, 30);
  // Exercise the non-default node fields too.
  dag.node(0).rank = 1;
  dag.node(1).affinity_core = 2;
  dag.node(2).phase = 7;
  net::WireWriter w;
  net::encode_dag(dag, w);
  net::WireReader r(w.data(), w.size());
  const Dag copy = net::decode_dag(r);
  EXPECT_EQ(r.remaining(), 0u);
  ASSERT_EQ(copy.num_nodes(), dag.num_nodes());
  ASSERT_EQ(copy.num_edges(), dag.num_edges());
  for (NodeId id = 0; id < dag.num_nodes(); ++id) {
    const DagNode& a = dag.node(id);
    const DagNode& b = copy.node(id);
    EXPECT_EQ(a.type, b.type) << "node " << id;
    EXPECT_EQ(a.priority, b.priority) << "node " << id;
    EXPECT_DOUBLE_EQ(a.params.p0, b.params.p0) << "node " << id;
    EXPECT_EQ(a.rank, b.rank) << "node " << id;
    EXPECT_EQ(a.affinity_core, b.affinity_core) << "node " << id;
    EXPECT_EQ(a.phase, b.phase) << "node " << id;
    ASSERT_EQ(copy.num_successors(id), dag.num_successors(id)) << "node " << id;
    auto ita = dag.successors(id).begin();
    auto itb = copy.successors(id).begin();
    for (std::size_t j = 0; j < dag.num_successors(id); ++j, ++ita, ++itb) {
      EXPECT_EQ(ita->to, itb->to);
      EXPECT_DOUBLE_EQ(ita->delay_s, itb->delay_s);
    }
  }
}

TEST_F(NetServiceTest, MalformedDagPayloadThrows) {
  net::WireWriter w;
  w.pod(std::uint32_t{0xdeadbeef});  // wrong magic
  w.pod(std::uint16_t{1});
  net::WireReader r1(w.data(), w.size());
  EXPECT_THROW(net::decode_dag(r1), PreconditionError);

  net::WireWriter ok;
  net::encode_dag(paper_dag(2, 10), ok);
  net::WireReader r2(ok.data(), ok.size() / 2);  // truncated
  EXPECT_THROW(net::decode_dag(r2), PreconditionError);
}

TEST_F(NetServiceTest, RunResultWireRoundTrip) {
  net::WireRunResult in;
  in.makespan_s = 1.25;
  in.tasks_per_s = 32.0;
  in.tasks = 40;
  in.job = 7;
  in.arrival_s = 0.5;
  in.queue_s = 0.125;
  in.tenant = "team-a";
  in.backend = 0;
  in.policy = 3;
  in.outcome = 2;  // kTimedOut
  in.tasks_reexecuted = 5;
  net::WireWriter w;
  net::encode_run_result(in, w);
  net::WireReader r(w.data(), w.size());
  const net::WireRunResult out = net::decode_run_result(r);
  EXPECT_EQ(out.makespan_s, in.makespan_s);
  EXPECT_EQ(out.tasks_per_s, in.tasks_per_s);
  EXPECT_EQ(out.tasks, in.tasks);
  EXPECT_EQ(out.job, in.job);
  EXPECT_EQ(out.arrival_s, in.arrival_s);
  EXPECT_EQ(out.queue_s, in.queue_s);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.policy, in.policy);
  EXPECT_EQ(out.outcome, in.outcome);
  EXPECT_EQ(out.tasks_reexecuted, in.tasks_reexecuted);
}

TEST_F(NetServiceTest, RemoteSubmissionMatchesLocalRunBitwise) {
  // Acceptance criterion: submitting a DAG to a served executor rank over
  // the wire yields results IDENTICAL to running the same (same-seed, same
  // config) executor locally — the DES never calls work closures, so the
  // serialized cost-model DAG reproduces the local schedule bit for bit.
  const Dag dag = paper_dag(4, 40);

  auto local = fresh_sim();
  const RunResult want = local->run(dag);

  net::WireRunResult got;
  net::World world(2);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      auto exec = fresh_sim();
      net::serve_executor(comm, *exec);
    } else {
      net::ServiceClient client(comm, /*server_rank=*/0);
      const JobId id = client.submit(dag);
      got = client.wait(id);
      client.bye();
    }
  });

  EXPECT_EQ(got.makespan_s, want.makespan_s);  // bitwise, not approximate
  EXPECT_EQ(got.tasks_per_s, want.tasks_per_s);
  EXPECT_EQ(got.tasks, want.tasks);
  EXPECT_EQ(got.arrival_s, want.arrival_s);
  EXPECT_EQ(static_cast<Backend>(got.backend), want.backend);
  EXPECT_EQ(static_cast<Policy>(got.policy), want.policy);
  EXPECT_TRUE(got.ok());
}

TEST_F(NetServiceTest, MultiClientSessionsOverTheWire) {
  // Two client ranks, each with its own remote session: every submission
  // completes under the right tenant name and the per-client ids resolve.
  constexpr int kClients = 2;
  constexpr int kJobsEach = 3;
  std::vector<std::vector<net::WireRunResult>> results(kClients);
  net::World world(kClients + 1);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      auto exec = make_executor(Backend::kSim, topo_, Policy::kRws, registry_,
                                ExecutorConfig::builder().seed(9).build());
      net::serve_executor(comm, *exec);
      return;
    }
    net::ServiceClient client(comm, 0);
    TenantConfig cfg;
    cfg.name = "client-" + std::to_string(comm.rank());
    cfg.weight = static_cast<double>(comm.rank());
    cfg.max_in_flight = 2;
    const int session = client.open_session(cfg);
    const Dag dag = paper_dag(3, 30);
    std::vector<JobId> ids;
    for (int j = 0; j < kJobsEach; ++j)
      ids.push_back(client.submit(dag, {}, session));
    for (JobId id : ids)
      results[static_cast<std::size_t>(comm.rank() - 1)].push_back(
          client.wait(id));
    client.bye();
  });

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[static_cast<std::size_t>(c)].size(),
              static_cast<std::size_t>(kJobsEach));
    for (const net::WireRunResult& r : results[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(r.tenant, "client-" + std::to_string(c + 1));
      EXPECT_EQ(r.tasks, 30);
      EXPECT_GT(r.makespan_s, 0.0);
      EXPECT_TRUE(r.ok());
    }
  }
}

TEST_F(NetServiceTest, ResubmitTokenIsIdempotent) {
  // At-least-once client retry, exactly-once server submission: re-sending
  // a submit with the SAME idempotency token returns the original JobId and
  // enqueues nothing (one job's worth of tasks runs, not two).
  net::World world(2);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      auto exec = fresh_sim();
      net::serve_executor(comm, *exec);
      return;
    }
    net::ServiceClient client(comm, 0);
    const Dag dag = paper_dag(3, 30);
    const JobId first = client.resubmit(dag, {}, /*session=*/-1, /*token=*/77);
    const JobId again = client.resubmit(dag, {}, /*session=*/-1, /*token=*/77);
    EXPECT_EQ(first, again);
    const net::WireRunResult r = client.wait(first);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.tasks, 30);
    // A fresh token is a genuinely new job.
    const JobId other = client.resubmit(dag, {}, /*session=*/-1, /*token=*/78);
    EXPECT_NE(other, first);
    EXPECT_TRUE(client.wait(other).ok());
    client.bye();
  });
}

TEST_F(NetServiceTest, ClientWaitForTimesOutThenCompletes) {
  // The bounded remote wait: a too-short bound replies "not yet" and the
  // job stays waitable; a generous bound delivers the normal result. ping()
  // rides along as the zero-cost liveness refresh.
  net::World world(2);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      auto exec = fresh_sim();
      net::serve_executor(comm, *exec);
      return;
    }
    net::ServiceClient client(comm, 0);
    client.ping();
    const JobId id = client.submit(paper_dag(4, 40));
    const std::optional<net::WireRunResult> first = client.wait_for(id, 0.0);
    EXPECT_FALSE(first.has_value());
    const std::optional<net::WireRunResult> second = client.wait_for(id, 60.0);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->ok());
    EXPECT_EQ(second->tasks, 40);
    client.bye();
  });
}

TEST_F(NetServiceTest, ServerReapsDeadClient) {
  // Fail-stop client: rank 2 submits a job and VANISHES without bye.
  // A reaping server must notice the silence, drain the orphan job, count
  // the seat as departed, and still return — world.run() completing is the
  // liveness assertion (a non-reaping server would block forever).
  net::WireRunResult live_result;
  net::World world(3);
  world.run([&](net::Comm& comm) {
    if (comm.rank() == 0) {
      auto exec = fresh_sim();
      net::ServeOptions opts;
      opts.client_timeout_s = 0.25;
      opts.tick_s = 0.02;
      net::serve_executor(comm, *exec, opts);
      return;
    }
    net::ServiceClient client(comm, 0);
    if (comm.rank() == 2) {
      client.submit(paper_dag(3, 30));
      return;  // fail-stop: no wait, no bye
    }
    // Rank 1 stays live well past rank 2's reaping (pings keep its seat).
    const JobId id = client.submit(paper_dag(4, 40));
    live_result = client.wait(id);
    for (int i = 0; i < 30; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      client.ping();
    }
    client.bye();
  });
  EXPECT_TRUE(live_result.ok());
  EXPECT_EQ(live_result.tasks, 40);
}

}  // namespace
}  // namespace das
