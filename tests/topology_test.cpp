// Unit tests for the platform topology: presets, execution-place enumeration,
// the width-alignment rule, local-search candidate sets, and validation.

#include <gtest/gtest.h>

#include <set>

#include "platform/topology.hpp"
#include "util/assert.hpp"

namespace das {
namespace {

TEST(Topology, Tx2Shape) {
  const Topology t = Topology::tx2();
  EXPECT_EQ(t.num_cores(), 6);
  EXPECT_EQ(t.num_clusters(), 2);
  EXPECT_EQ(t.cluster(0).name, "denver");
  EXPECT_EQ(t.cluster(0).num_cores, 2);
  EXPECT_EQ(t.cluster(1).num_cores, 4);
  EXPECT_EQ(t.fastest_cluster(), 0);
  EXPECT_DOUBLE_EQ(t.max_base_speed(), 1.0);
  EXPECT_EQ(t.cluster_index_of(0), 0);
  EXPECT_EQ(t.cluster_index_of(1), 0);
  EXPECT_EQ(t.cluster_index_of(2), 1);
  EXPECT_EQ(t.cluster_index_of(5), 1);
}

TEST(Topology, Tx2PlacesMatchPaperFigure2) {
  const Topology t = Topology::tx2();
  // Denver: (0,1) (0,2) (1,1); A57: (2,1) (2,2) (2,4) (3,1) (4,1) (4,2) (5,1)
  EXPECT_EQ(t.num_places(), 10);
  EXPECT_TRUE(t.is_valid_place({0, 1}));
  EXPECT_TRUE(t.is_valid_place({0, 2}));
  EXPECT_TRUE(t.is_valid_place({1, 1}));
  EXPECT_TRUE(t.is_valid_place({2, 2}));
  EXPECT_TRUE(t.is_valid_place({4, 2}));
  EXPECT_TRUE(t.is_valid_place({2, 4}));
  // Alignment rule (the paper's Fig. 5 never shows these):
  EXPECT_FALSE(t.is_valid_place({1, 2}));  // unaligned in denver
  EXPECT_FALSE(t.is_valid_place({3, 2}));  // unaligned in a57
  EXPECT_FALSE(t.is_valid_place({5, 2}));
  EXPECT_FALSE(t.is_valid_place({3, 4}));
  EXPECT_FALSE(t.is_valid_place({2, 8}));  // width unsupported
  EXPECT_FALSE(t.is_valid_place({-1, 1}));
  EXPECT_FALSE(t.is_valid_place({6, 1}));
}

TEST(Topology, PlaceIdsAreDenseAndStable) {
  const Topology t = Topology::tx2();
  std::set<int> ids;
  for (const ExecutionPlace& p : t.places()) {
    const int id = t.place_id(p);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate place id " << id;
    EXPECT_EQ(t.place_at(id), p);
  }
  EXPECT_EQ(static_cast<int>(ids.size()), t.num_places());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), t.num_places() - 1);
}

TEST(Topology, LocalPlacesKeepCoreInsidePlace) {
  const Topology t = Topology::tx2();
  for (int core = 0; core < t.num_cores(); ++core) {
    for (const ExecutionPlace& p : t.local_places(core)) {
      EXPECT_TRUE(t.is_valid_place(p));
      EXPECT_LE(p.leader, core);
      EXPECT_GT(p.leader + p.width, core) << "local place must contain the core";
    }
  }
  // Core 3 of the A57 cluster: (3,1), (2,2), (2,4).
  const auto& lp = t.local_places(3);
  ASSERT_EQ(lp.size(), 3u);
  EXPECT_EQ(lp[0], (ExecutionPlace{3, 1}));
  EXPECT_EQ(lp[1], (ExecutionPlace{2, 2}));
  EXPECT_EQ(lp[2], (ExecutionPlace{2, 4}));
}

TEST(Topology, LeaderForAlignsDown) {
  const Topology t = Topology::tx2();
  EXPECT_EQ(t.leader_for(3, 2), 2);
  EXPECT_EQ(t.leader_for(5, 4), 2);
  EXPECT_EQ(t.leader_for(1, 2), 0);
  EXPECT_EQ(t.leader_for(4, 1), 4);
}

TEST(Topology, Width1PlacesCoverAllCores) {
  const Topology t = Topology::haswell16();
  const auto& w1 = t.width1_places();
  ASSERT_EQ(static_cast<int>(w1.size()), t.num_cores());
  for (int c = 0; c < t.num_cores(); ++c) {
    EXPECT_EQ(w1[static_cast<std::size_t>(c)].leader, c);
    EXPECT_EQ(w1[static_cast<std::size_t>(c)].width, 1);
  }
}

TEST(Topology, Haswell16Shape) {
  const Topology t = Topology::haswell16();
  EXPECT_EQ(t.num_cores(), 16);
  EXPECT_EQ(t.num_clusters(), 2);
  EXPECT_TRUE(t.is_valid_place({0, 8}));
  EXPECT_TRUE(t.is_valid_place({8, 8}));
  EXPECT_TRUE(t.is_valid_place({8, 4}));
  EXPECT_FALSE(t.is_valid_place({4, 8}));
}

TEST(Topology, Haswell20WidthEightOnlyAtSocketStart) {
  const Topology t = Topology::haswell20();
  EXPECT_EQ(t.num_cores(), 20);
  EXPECT_TRUE(t.is_valid_place({0, 8}));
  EXPECT_TRUE(t.is_valid_place({10, 8}));
  // Offset 8 + width 8 = 16 > 10 cores: spills the socket.
  EXPECT_FALSE(t.is_valid_place({8, 8}));
  EXPECT_FALSE(t.is_valid_place({18, 8}));
}

TEST(Topology, HaswellClusterConcatenatesNodes) {
  const Topology t = Topology::haswell_cluster(4);
  EXPECT_EQ(t.num_cores(), 80);
  EXPECT_EQ(t.num_clusters(), 8);
  EXPECT_EQ(t.cluster(2).name, "n1.s0");
  EXPECT_EQ(t.cluster(2).first_core, 20);
}

TEST(Topology, SymmetricPreset) {
  const Topology t = Topology::symmetric(3, 4, 2.0);
  EXPECT_EQ(t.num_cores(), 12);
  EXPECT_DOUBLE_EQ(t.max_base_speed(), 2.0);
  EXPECT_EQ(t.cluster(1).widths, (std::vector<int>{1, 2, 4}));
}

TEST(Topology, RejectsMalformedClusters) {
  // Non-contiguous tiling.
  Cluster a{.name = "a", .first_core = 0, .num_cores = 2, .base_speed = 1.0, .widths = {1, 2}};
  Cluster gap{.name = "b", .first_core = 3, .num_cores = 2, .base_speed = 1.0, .widths = {1, 2}};
  EXPECT_THROW(Topology({a, gap}), PreconditionError);
  // Missing width 1.
  Cluster no1{.name = "c", .first_core = 0, .num_cores = 4, .base_speed = 1.0, .widths = {2, 4}};
  EXPECT_THROW(Topology({no1}), PreconditionError);
  // Non-power-of-two width.
  Cluster w3{.name = "d", .first_core = 0, .num_cores = 4, .base_speed = 1.0, .widths = {1, 3}};
  EXPECT_THROW(Topology({w3}), PreconditionError);
  // Width larger than the cluster.
  Cluster big{.name = "e", .first_core = 0, .num_cores = 2, .base_speed = 1.0, .widths = {1, 4}};
  EXPECT_THROW(Topology({big}), PreconditionError);
}

TEST(Topology, PlaceToString) {
  EXPECT_EQ(to_string(ExecutionPlace{2, 4}), "(C2,4)");
}

}  // namespace
}  // namespace das
