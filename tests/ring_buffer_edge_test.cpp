// Edge cases of util/ring_buffer.hpp and util/spinlock.hpp that the broad
// suites exercise only incidentally: growth exactly at capacity with the
// head mid-ring (wraparound), reserve() on a non-empty wrapped ring, and
// try_lock under real contention. The model checker covers the ring's
// op-sequence semantics exhaustively (tests/model_check_test.cpp); these
// are the targeted large-value / real-thread complements.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "util/ring_buffer.hpp"
#include "util/spinlock.hpp"

namespace das {
namespace {

// ---------------------------------------------------------------------------
// RingBuffer

TEST(RingBufferEdge, GrowAtCapacityWithWrappedHead) {
  RingBuffer<int> rb;
  // Fill to the initial capacity (8), then rotate so head_ sits mid-ring.
  for (int i = 0; i < 8; ++i) rb.push_back(i);
  ASSERT_EQ(rb.capacity(), 8u);
  for (int i = 0; i < 5; ++i) rb.pop_front();
  for (int i = 8; i < 13; ++i) rb.push_back(i);  // wraps: head_ == 5
  ASSERT_EQ(rb.size(), 8u);
  ASSERT_EQ(rb.capacity(), 8u);
  // The next push grows while wrapped; order must be preserved.
  rb.push_back(13);
  EXPECT_EQ(rb.capacity(), 16u);
  for (int expect = 5; expect <= 13; ++expect) {
    ASSERT_FALSE(rb.empty());
    EXPECT_EQ(rb.front(), expect);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferEdge, MixedEndsAcrossRepeatedWraps) {
  RingBuffer<int> rb;
  std::deque<int> ref;
  int next = 0;
  // Deterministic push/pop pattern that repeatedly wraps and grows; the
  // deque is the executable specification.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 3; ++i) {
      rb.push_back(next);
      ref.push_back(next);
      ++next;
    }
    if (round % 2 == 0 && !ref.empty()) {
      ASSERT_EQ(rb.front(), ref.front());
      rb.pop_front();
      ref.pop_front();
    }
    if (round % 3 == 0 && !ref.empty()) {
      ASSERT_EQ(rb.back(), ref.back());
      rb.pop_back();
      ref.pop_back();
    }
    ASSERT_EQ(rb.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(rb.front(), ref.front());
    rb.pop_front();
    ref.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferEdge, ReserveWhileNonEmptyAndWrapped) {
  RingBuffer<int> rb;
  for (int i = 0; i < 8; ++i) rb.push_back(i);
  for (int i = 0; i < 6; ++i) rb.pop_front();
  for (int i = 8; i < 12; ++i) rb.push_back(i);  // head_ == 6, wrapped
  ASSERT_EQ(rb.size(), 6u);
  rb.reserve(50);
  EXPECT_EQ(rb.capacity(), 64u);  // rounded up to a power of two
  EXPECT_EQ(rb.size(), 6u);
  for (int expect = 6; expect <= 11; ++expect) {
    EXPECT_EQ(rb.front(), expect);
    rb.pop_front();
  }
  // reserve() below the current capacity is a no-op.
  rb.reserve(4);
  EXPECT_EQ(rb.capacity(), 64u);
}

TEST(RingBufferEdge, ReserveOnEmptyThenUse) {
  RingBuffer<int> rb;
  rb.reserve(100);
  EXPECT_EQ(rb.capacity(), 128u);
  const std::size_t cap = rb.capacity();
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.capacity(), cap) << "reserve must pre-empt regrowth";
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBufferEdge, ClearKeepsCapacityAndResetsOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(i);
  const std::size_t cap = rb.capacity();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);
  rb.push_back(7);
  EXPECT_EQ(rb.front(), 7);
  EXPECT_EQ(rb.back(), 7);
}

// ---------------------------------------------------------------------------
// Spinlock

TEST(SpinlockEdge, TryLockReportsHeldAndFree) {
  Spinlock mu;
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock()) << "second try_lock on a held lock must fail";
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SpinlockEdge, TryLockContention) {
  // N threads hammer try_lock around a shared counter; every successful
  // acquisition is a critical section. The invariants: the counter equals
  // the number of successful acquisitions (no lost updates => mutual
  // exclusion held), and at most one thread is inside at any instant.
  Spinlock mu;
  constexpr int kThreads = 4;
  constexpr int kAttempts = 20000;
  int counter = 0;  // guarded by mu (via try_lock)
  std::atomic<int> successes{0};
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        if (!mu.try_lock()) continue;
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0)
          overlap.store(true, std::memory_order_relaxed);
        ++counter;
        successes.fetch_add(1, std::memory_order_relaxed);
        inside.fetch_sub(1, std::memory_order_acq_rel);
        mu.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load()) << "two threads inside a try_lock section";
  EXPECT_EQ(counter, successes.load());
  EXPECT_GT(successes.load(), 0);
  EXPECT_TRUE(mu.try_lock()) << "lock must be free after all threads exit";
  mu.unlock();
}

TEST(SpinlockEdge, BlockingLockContention) {
  // Same shape with blocking lock(): every increment must land.
  Spinlock mu;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinlockGuard g(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

}  // namespace
}  // namespace das
