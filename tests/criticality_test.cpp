// Tests for automatic criticality inference: bottom/top levels (unit and
// cost-weighted), critical-path marking, fanout marking, and recovery of the
// synthetic generator's ground-truth marks.

#include <gtest/gtest.h>

#include "core/criticality.hpp"
#include "util/assert.hpp"
#include "kernels/registry.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

constexpr TaskTypeId kT = 0;

TEST(Criticality, BottomAndTopLevelsOnAChain) {
  Dag d;
  NodeId prev = kInvalidNode;
  for (int i = 0; i < 5; ++i) {
    const NodeId n = d.add_node(kT);
    if (prev != kInvalidNode) d.add_edge(prev, n);
    prev = n;
  }
  const auto bottom = bottom_levels(d);
  const auto top = top_levels(d);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(bottom[static_cast<std::size_t>(i)], 5.0 - i);
    EXPECT_DOUBLE_EQ(top[static_cast<std::size_t>(i)], i + 1.0);
  }
}

TEST(Criticality, DiamondMarksLongestBranchOnly) {
  //      a
  //    /   \      upper branch b-c (longer), lower branch d
  //   b     d
  //   |     |
  //   c     |
  //    \   /
  //      e
  Dag dag;
  const NodeId a = dag.add_node(kT);
  const NodeId b = dag.add_node(kT);
  const NodeId c = dag.add_node(kT);
  const NodeId d = dag.add_node(kT);
  const NodeId e = dag.add_node(kT);
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  dag.add_edge(c, e);
  dag.add_edge(a, d);
  dag.add_edge(d, e);

  const int marked = infer_criticality(dag);
  EXPECT_EQ(marked, 4);  // a, b, c, e — the length-4 path
  EXPECT_EQ(dag.node(a).priority, Priority::kHigh);
  EXPECT_EQ(dag.node(b).priority, Priority::kHigh);
  EXPECT_EQ(dag.node(c).priority, Priority::kHigh);
  EXPECT_EQ(dag.node(e).priority, Priority::kHigh);
  EXPECT_EQ(dag.node(d).priority, Priority::kLow);
}

TEST(Criticality, CostWeightsFlipTheCriticalBranch) {
  // Same diamond, but the "short" branch carries one expensive task. Use
  // matmul's cost model: tile 96 >> 2x tile 16.
  TaskTypeRegistry reg;
  const auto ids = kernels::register_paper_kernels(reg);
  const Topology topo = Topology::tx2();

  Dag dag;
  TaskParams small;
  small.p0 = 16;
  TaskParams big;
  big.p0 = 96;
  const NodeId a = dag.add_node(ids.matmul, Priority::kLow, small);
  const NodeId b = dag.add_node(ids.matmul, Priority::kLow, small);
  const NodeId c = dag.add_node(ids.matmul, Priority::kLow, small);
  const NodeId d = dag.add_node(ids.matmul, Priority::kLow, big);
  const NodeId e = dag.add_node(ids.matmul, Priority::kLow, small);
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  dag.add_edge(c, e);
  dag.add_edge(a, d);
  dag.add_edge(d, e);

  // Unit weights: the two-node branch b-c wins (it is longer in nodes).
  infer_criticality(dag);
  EXPECT_EQ(dag.node(d).priority, Priority::kLow);

  // Cost weights: the expensive single task d dominates.
  CriticalityOptions opts;
  opts.registry = &reg;
  opts.reference_cluster = &topo.cluster(0);
  infer_criticality(dag, opts);
  EXPECT_EQ(dag.node(d).priority, Priority::kHigh);
  EXPECT_EQ(dag.node(b).priority, Priority::kLow);
  EXPECT_EQ(dag.node(c).priority, Priority::kLow);
}

TEST(Criticality, FanoutMarking) {
  Dag dag;
  const NodeId hub = dag.add_node(kT);
  for (int i = 0; i < 6; ++i) {
    const NodeId leaf = dag.add_node(kT);
    dag.add_edge(hub, leaf);
  }
  // Long chain elsewhere so the hub is NOT on the critical path.
  NodeId prev = dag.add_node(kT);
  for (int i = 0; i < 5; ++i) {
    const NodeId n = dag.add_node(kT);
    dag.add_edge(prev, n);
    prev = n;
  }

  CriticalityOptions opts;
  opts.mark_critical_path = false;
  opts.fanout_threshold = 4;
  const int marked = infer_criticality(dag, opts);
  EXPECT_EQ(marked, 1);
  EXPECT_EQ(dag.node(hub).priority, Priority::kHigh);
}

class RecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryTest, RecoversSyntheticGeneratorMarks) {
  const int P = GetParam();
  workloads::SyntheticDagSpec spec;
  spec.type = kT;
  spec.parallelism = P;
  spec.total_tasks = 30 * P;
  Dag dag = workloads::make_synthetic_dag(spec);

  // Record the generator's ground truth, then erase it.
  std::vector<Priority> truth;
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    truth.push_back(dag.node(i).priority);
    dag.node(i).priority = Priority::kLow;
  }

  infer_criticality(dag);

  // Every generator-critical node must be recovered. (The last layer's
  // non-critical tasks also sit on maximal paths — the chain gates them — so
  // inference may mark a superset there; everything before the final layer
  // must match exactly.)
  const int last_layer_start = dag.num_nodes() - P;
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    if (truth[static_cast<std::size_t>(i)] == Priority::kHigh) {
      EXPECT_EQ(dag.node(i).priority, Priority::kHigh) << "node " << i;
    } else if (i < last_layer_start) {
      EXPECT_EQ(dag.node(i).priority, Priority::kLow) << "node " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, RecoveryTest, ::testing::Values(2, 4, 6));

TEST(Criticality, EmptyDagRejected) {
  Dag dag;
  EXPECT_THROW(infer_criticality(dag), PreconditionError);
}

}  // namespace
}  // namespace das
