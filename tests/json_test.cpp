// Tests for the minimal JSON layer (util/json.hpp): parse/dump round-trips,
// number fidelity, strict diagnostics with line:col context, and the
// insertion-ordered object semantics the deterministic bench output relies
// on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json.hpp"

namespace das::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NestedDocumentAndWhitespace) {
  const Value v = parse(R"(  { "a": [1, 2, {"b": null}], "c": "x" }  )");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 2u);
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->is_null());
  EXPECT_EQ(v.find("c")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, LineCommentsAllowed) {
  const Value v = parse("// header\n{ \"a\": 1 // trailing\n}");
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(JsonParse, DiagnosticsCarryOriginLineAndColumn) {
  try {
    parse("{\n  \"a\": nope\n}", "spec.json");
    FAIL() << "expected json::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("spec.json:2:8"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("1 2"), Error);          // trailing garbage
  EXPECT_THROW(parse("1.2.3"), Error);        // bad number
  EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), Error);  // duplicate key
}

TEST(JsonValue, TypeMismatchesThrowInsteadOfUB) {
  EXPECT_THROW(parse("1").as_string(), Error);
  EXPECT_THROW(parse("\"x\"").as_number(), Error);
  EXPECT_THROW(parse("[]").members(), Error);
  EXPECT_THROW(parse("{}").as_array(), Error);
}

TEST(JsonDump, RoundTripsPreservingOrderAndPrecision) {
  Value doc = Value::object();
  doc.set("zeta", 1);
  doc.set("alpha", 0.1);  // not representable exactly: tests shortest-repr
  doc.set("list", Array{Value(1), Value("two"), Value(true)});
  const std::string text = doc.dump();
  const Value back = parse(text);
  // Insertion order survives (zeta before alpha).
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  EXPECT_DOUBLE_EQ(back.find("alpha")->as_number(), 0.1);
  EXPECT_EQ(back.find("list")->as_array()[1].as_string(), "two");
  // Dump of a parsed dump is a fixed point.
  EXPECT_EQ(parse(text).dump(), text);
}

TEST(JsonDump, IntegersPrintWithoutExponent) {
  EXPECT_EQ(Value(std::int64_t{123456789}).dump(), "123456789");
  EXPECT_EQ(Value(2020).dump(), "2020");
  EXPECT_EQ(Value(-3).dump(), "-3");
}

TEST(JsonDump, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
}

TEST(JsonDump, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(Value("a\"b\n\x01").dump(), R"("a\"b\n\u0001")");
}

TEST(JsonDump, PrettyPrintingIsReparseable) {
  Value doc = Value::object();
  doc.set("runs", Array{Value(1), Value(2)});
  doc.set("nested", Value::object());
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty).dump(), doc.dump());
}

}  // namespace
}  // namespace das::json
