// Tests for the seven scheduling policies (Algorithm 1 + Table 1): wake-up
// routing, steal exemption, fixed-place computation, local/global searches
// against brute force, exploration of zero entries, and the Table 1 traits.

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "core/policy.hpp"
#include "util/assert.hpp"

namespace das {
namespace {

constexpr TaskTypeId kT = 0;

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture() : topo_(Topology::tx2()), ptt_(topo_, 1) {}

  PolicyEngine make(Policy p, PolicyOptions opts = {}) {
    return PolicyEngine(p, topo_, &ptt_, /*seed=*/1, opts);
  }

  /// Seeds the PTT so that every place has a distinct, known value:
  /// value = 1 + place_id (seconds).
  void seed_distinct() {
    for (int pid = 0; pid < topo_.num_places(); ++pid)
      ptt_.table(kT).fill(0.0);
    for (int pid = 0; pid < topo_.num_places(); ++pid)
      ptt_.table(kT).update(pid, 1.0 + pid);
  }

  /// Brute-force arg-min over candidates.
  ExecutionPlace brute_min(const std::vector<ExecutionPlace>& cands,
                           bool cost) const {
    double best = std::numeric_limits<double>::infinity();
    ExecutionPlace arg{};
    for (const auto& p : cands) {
      const double v = ptt_.table(kT).value(topo_.place_id(p));
      const double key = cost ? v * p.width : v;
      if (key < best) {
        best = key;
        arg = p;
      }
    }
    return arg;
  }

  Topology topo_;
  PttStore ptt_;
};

TEST_F(PolicyFixture, Table1Traits) {
  EXPECT_STREQ(policy_traits(Policy::kRws).asymmetry, "N/A");
  EXPECT_STREQ(policy_traits(Policy::kRwsmC).moldability, "Yes");
  EXPECT_STREQ(policy_traits(Policy::kFa).asymmetry, "Fixed");
  EXPECT_STREQ(policy_traits(Policy::kFamC).priority_placement, "Resource Cost");
  EXPECT_STREQ(policy_traits(Policy::kDa).asymmetry, "Dynamic");
  EXPECT_STREQ(policy_traits(Policy::kDamC).priority_placement, "Resource Cost");
  EXPECT_STREQ(policy_traits(Policy::kDamP).priority_placement, "Performance");
  EXPECT_FALSE(policy_traits(Policy::kRws).uses_ptt);
  EXPECT_FALSE(policy_traits(Policy::kFa).uses_ptt);
  EXPECT_TRUE(policy_traits(Policy::kDa).uses_ptt);
  EXPECT_FALSE(policy_traits(Policy::kRwsmC).priority_aware);
  EXPECT_TRUE(policy_traits(Policy::kFa).priority_aware);
}

TEST_F(PolicyFixture, NamesRoundTrip) {
  for (Policy p : all_policies()) {
    const auto back = policy_from_name(policy_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(policy_from_name("NOPE").has_value());
  EXPECT_EQ(all_policies().size(), 7u);
}

TEST_F(PolicyFixture, PttRequiredExactlyWhenTraitsSaySo) {
  for (Policy p : all_policies()) {
    if (policy_traits(p).uses_ptt) {
      EXPECT_THROW(PolicyEngine(p, topo_, nullptr), PreconditionError)
          << policy_name(p);
    } else {
      EXPECT_NO_THROW(PolicyEngine(p, topo_, nullptr)) << policy_name(p);
    }
  }
}

// --- Wake-up routing ---------------------------------------------------------

TEST_F(PolicyFixture, LowPriorityStaysLocalAndStealableForAllPolicies) {
  for (Policy p : all_policies()) {
    PolicyEngine eng = make(p);
    for (int core : {0, 3, 5}) {
      const WakeDecision wd = eng.on_ready(kT, Priority::kLow, core);
      EXPECT_EQ(wd.queue_core, core) << policy_name(p);
      EXPECT_TRUE(wd.stealable) << policy_name(p);
      EXPECT_FALSE(wd.has_fixed_place) << policy_name(p);
    }
  }
}

TEST_F(PolicyFixture, RwsIgnoresPriority) {
  for (Policy p : {Policy::kRws, Policy::kRwsmC}) {
    PolicyEngine eng = make(p);
    const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 4);
    EXPECT_EQ(wd.queue_core, 4);
    EXPECT_TRUE(wd.stealable);
    EXPECT_FALSE(wd.has_fixed_place);
  }
}

TEST_F(PolicyFixture, FaRoundRobinsOverFastCores) {
  PolicyEngine eng = make(Policy::kFa);
  std::multiset<int> targets;
  for (int i = 0; i < 10; ++i) {
    const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 4);
    EXPECT_FALSE(wd.stealable);
    ASSERT_TRUE(wd.has_fixed_place);
    EXPECT_EQ(wd.fixed_place.width, 1);
    EXPECT_EQ(wd.queue_core, wd.fixed_place.leader);
    // Fast cluster on TX2 = denver cores {0, 1}.
    EXPECT_LE(wd.queue_core, 1);
    targets.insert(wd.queue_core);
  }
  // Round-robin: an even 50/50 split (paper Fig. 5(c)).
  EXPECT_EQ(targets.count(0), 5u);
  EXPECT_EQ(targets.count(1), 5u);
}

TEST_F(PolicyFixture, FamCRoundRobinsFastCoresAndMoldsWidthLocally) {
  seed_distinct();
  PolicyEngine eng = make(Policy::kFamC);
  // First wake lands on fast core 0, second on fast core 1 (round-robin,
  // PTT-blind core choice); the WIDTH comes from the local cost search.
  const WakeDecision wd0 = eng.on_ready(kT, Priority::kHigh, 4);
  ASSERT_TRUE(wd0.has_fixed_place);
  EXPECT_EQ(wd0.fixed_place, brute_min(topo_.local_places(0), /*cost=*/true));
  const WakeDecision wd1 = eng.on_ready(kT, Priority::kHigh, 4);
  ASSERT_TRUE(wd1.has_fixed_place);
  EXPECT_EQ(wd1.fixed_place, brute_min(topo_.local_places(1), /*cost=*/true));
  // Both stay inside the statically-fast (denver) cluster.
  EXPECT_EQ(topo_.cluster_index_of(wd0.fixed_place.leader), 0);
  EXPECT_EQ(topo_.cluster_index_of(wd1.fixed_place.leader), 0);
}

TEST_F(PolicyFixture, DaPicksFastestSingleCore) {
  seed_distinct();
  // Make core 3 (a57) clearly the fastest single core.
  for (int i = 0; i < 64; ++i) ptt_.table(kT).update(ExecutionPlace{3, 1}, 0.01);
  PolicyEngine eng = make(Policy::kDa);
  const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 0);
  ASSERT_TRUE(wd.has_fixed_place);
  EXPECT_EQ(wd.fixed_place, (ExecutionPlace{3, 1}));
  EXPECT_FALSE(wd.stealable);
}

TEST_F(PolicyFixture, DamCMinimisesGlobalParallelCost) {
  seed_distinct();
  PolicyEngine eng = make(Policy::kDamC);
  const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 5);
  ASSERT_TRUE(wd.has_fixed_place);
  EXPECT_EQ(wd.fixed_place, brute_min(topo_.places(), /*cost=*/true));
}

TEST_F(PolicyFixture, DamPMinimisesGlobalTime) {
  seed_distinct();
  // Make the wide A57 place the fastest in TIME but poor in COST:
  // time 0.5 beats every other entry (>= 1.0), but cost 0.5*4 = 2.0 loses
  // to (0,1)'s cost of 1.0.
  for (int i = 0; i < 64; ++i) ptt_.table(kT).update(ExecutionPlace{2, 4}, 0.5);
  PolicyEngine eng_p = make(Policy::kDamP);
  const WakeDecision wd_p = eng_p.on_ready(kT, Priority::kHigh, 0);
  ASSERT_TRUE(wd_p.has_fixed_place);
  EXPECT_EQ(wd_p.fixed_place, (ExecutionPlace{2, 4}));
  EXPECT_EQ(wd_p.fixed_place, brute_min(topo_.places(), /*cost=*/false));
  // DAM-C must NOT pick it (cost 0.05*4 = 0.2 > min width-1 entries...).
  PolicyEngine eng_c = make(Policy::kDamC);
  const WakeDecision wd_c = eng_c.on_ready(kT, Priority::kHigh, 0);
  EXPECT_EQ(wd_c.fixed_place, brute_min(topo_.places(), /*cost=*/true));
  EXPECT_NE(wd_c.fixed_place, wd_p.fixed_place);
}

// --- Dequeue-time molding ----------------------------------------------------

TEST_F(PolicyFixture, NonMoldablePoliciesRunWidthOneWhereDequeued) {
  seed_distinct();
  for (Policy p : {Policy::kRws, Policy::kFa, Policy::kDa}) {
    PolicyEngine eng = make(p);
    for (int core = 0; core < topo_.num_cores(); ++core) {
      const ExecutionPlace place = eng.on_execute(kT, Priority::kLow, core);
      EXPECT_EQ(place, (ExecutionPlace{core, 1})) << policy_name(p);
    }
  }
}

TEST_F(PolicyFixture, MoldablePoliciesRunLocalCostSearch) {
  seed_distinct();
  for (Policy p : {Policy::kRwsmC, Policy::kFamC, Policy::kDamC, Policy::kDamP}) {
    PolicyEngine eng = make(p);
    for (int core = 0; core < topo_.num_cores(); ++core) {
      const ExecutionPlace place = eng.on_execute(kT, Priority::kLow, core);
      EXPECT_EQ(place, brute_min(topo_.local_places(core), /*cost=*/true))
          << policy_name(p) << " core " << core;
      // The local search must keep the core inside the place.
      EXPECT_LE(place.leader, core);
      EXPECT_GT(place.leader + place.width, core);
    }
  }
}

// --- Exploration -------------------------------------------------------------

TEST_F(PolicyFixture, ZeroInitExploresEveryPlaceOnce) {
  PolicyEngine eng = make(Policy::kDamC);
  std::set<int> chosen;
  // With an all-zero PTT every search returns a zero entry; simulate the
  // runtime by giving each chosen place one sample, so the tie pool shrinks.
  for (int i = 0; i < topo_.num_places(); ++i) {
    const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 0);
    ASSERT_TRUE(wd.has_fixed_place);
    const int pid = topo_.place_id(wd.fixed_place);
    EXPECT_TRUE(chosen.insert(pid).second)
        << "place " << to_string(wd.fixed_place) << " explored twice";
    eng.record_sample(kT, wd.fixed_place, 1.0);
  }
  EXPECT_EQ(static_cast<int>(chosen.size()), topo_.num_places());
}

TEST_F(PolicyFixture, RandomTieBreakStillExploresAll) {
  PolicyOptions opts;
  opts.random_tie_break = true;
  PolicyEngine eng = make(Policy::kDamP, opts);
  std::set<int> chosen;
  for (int i = 0; i < topo_.num_places(); ++i) {
    const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 0);
    chosen.insert(topo_.place_id(wd.fixed_place));
    eng.record_sample(kT, wd.fixed_place, 1.0);
  }
  // Fewest-samples tie-breaking still guarantees full coverage.
  EXPECT_EQ(static_cast<int>(chosen.size()), topo_.num_places());
}

TEST_F(PolicyFixture, RecordSampleIsNoOpForNonPttPolicies) {
  PolicyEngine rws(Policy::kRws, topo_, &ptt_);
  rws.record_sample(kT, ExecutionPlace{0, 1}, 9.0);
  EXPECT_EQ(ptt_.table(kT).samples(ExecutionPlace{0, 1}), 0u);
  PolicyEngine dam = make(Policy::kDamC);
  dam.record_sample(kT, ExecutionPlace{0, 1}, 9.0);
  EXPECT_EQ(ptt_.table(kT).samples(ExecutionPlace{0, 1}), 1u);
}

TEST_F(PolicyFixture, StealExemptionCanBeDisabled) {
  PolicyOptions opts;
  opts.steal_exempt_high_priority = false;
  PolicyEngine eng = make(Policy::kDamC, opts);
  const WakeDecision wd = eng.on_ready(kT, Priority::kHigh, 0);
  EXPECT_TRUE(wd.stealable);
  EXPECT_TRUE(wd.has_fixed_place);
}

// --- Adaptation property: the model redirects after a regime change ----------

class AdaptationTest : public ::testing::TestWithParam<Policy> {};

TEST_P(AdaptationTest, HighPriorityPlacementLeavesSlowedCore) {
  const Topology topo = Topology::tx2();
  PttStore ptt(topo, 1);
  PolicyEngine eng(GetParam(), topo, &ptt, 1);

  // Warm up: denver core 0 is the best single place.
  for (int pid = 0; pid < topo.num_places(); ++pid) {
    const ExecutionPlace& p = topo.place_at(pid);
    const double base = topo.cluster_of_core(p.leader).base_speed;
    for (int i = 0; i < 20; ++i)
      ptt.table(kT).update(pid, 0.001 / base * (p.leader == 0 ? 0.9 : 1.0));
  }
  const WakeDecision before = eng.on_ready(kT, Priority::kHigh, 0);
  ASSERT_TRUE(before.has_fixed_place);
  EXPECT_EQ(before.fixed_place.leader, 0);

  // Interference hits core 0: observed times triple for every place that
  // contains it. A handful of weighted updates must redirect the placement
  // (the paper's "at least three measurements" property).
  for (int i = 0; i < 12; ++i) {
    ptt.table(kT).update(ExecutionPlace{0, 1}, 0.0027);
    ptt.table(kT).update(ExecutionPlace{0, 2}, 0.0027);
  }
  const WakeDecision after = eng.on_ready(kT, Priority::kHigh, 0);
  ASSERT_TRUE(after.has_fixed_place);
  EXPECT_NE(after.fixed_place.leader, 0)
      << policy_name(GetParam()) << " kept the perturbed core";
}

INSTANTIATE_TEST_SUITE_P(DynamicPolicies, AdaptationTest,
                         ::testing::Values(Policy::kDa, Policy::kDamC,
                                           Policy::kDamP),
                         [](const auto& info) {
                           std::string n = policy_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
                           return n;
                         });

}  // namespace
}  // namespace das
