// Build-level smoke test: every subsystem is constructible and a tiny DAG
// executes end-to-end on both engines.

#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

TEST(Smoke, TinyDagRunsOnBothEngines) {
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::tx2();

  workloads::SyntheticDagSpec spec;
  spec.type = ids.matmul;
  spec.parallelism = 2;
  spec.total_tasks = 40;
  spec.params.p0 = 16;  // small tiles: fast
  Dag dag = workloads::make_synthetic_dag(spec);

  sim::SimEngine sim(topo, Policy::kDamC, registry);
  const double makespan = sim.run(dag);
  EXPECT_GT(makespan, 0.0);
  EXPECT_EQ(sim.stats().tasks_total(), dag.num_nodes());

  rt::Runtime rt(topo, Policy::kDamC, registry);
  const double wall = rt.run(dag);
  EXPECT_GT(wall, 0.0);
  EXPECT_EQ(rt.stats().tasks_total(), dag.num_nodes());
}

}  // namespace
}  // namespace das
