// Build-level smoke test: every subsystem is constructible and a tiny DAG
// executes end-to-end on both engines through the das::Executor facade.

#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

TEST(Smoke, TinyDagRunsOnBothBackends) {
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::tx2();

  workloads::SyntheticDagSpec spec;
  spec.type = ids.matmul;
  spec.parallelism = 2;
  spec.total_tasks = 40;
  spec.params.p0 = 16;  // small tiles: fast
  Dag dag = workloads::make_synthetic_dag(spec);

  for (Backend backend : all_backends()) {
    auto exec = make_executor(backend, topo, Policy::kDamC, registry);
    const RunResult result = exec->run(dag);
    EXPECT_GT(result.makespan_s, 0.0) << backend_name(backend);
    EXPECT_EQ(result.stats[0].tasks_total, dag.num_nodes())
        << backend_name(backend);
  }
}

}  // namespace
}  // namespace das
