// Unit + property tests for the Performance Trace Table: zero-initialisation
// exploration semantics, first-sample seeding, the weighted-average update
// (paper §4.1.1), convergence under stationary inputs for every ratio, and
// concurrent update integrity.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/ptt.hpp"
#include "util/assert.hpp"

namespace das {
namespace {

class PttTest : public ::testing::Test {
 protected:
  Topology topo_ = Topology::tx2();
};

TEST_F(PttTest, InitialisedToZeroEverywhere) {
  Ptt t(topo_);
  for (int pid = 0; pid < topo_.num_places(); ++pid) {
    EXPECT_DOUBLE_EQ(t.value(pid), 0.0);
    EXPECT_EQ(t.samples(pid), 0u);
  }
}

TEST_F(PttTest, FirstSampleStoredVerbatim) {
  Ptt t(topo_);
  t.update(ExecutionPlace{0, 1}, 0.5);
  EXPECT_DOUBLE_EQ(t.value(ExecutionPlace{0, 1}), 0.5);
  EXPECT_EQ(t.samples(ExecutionPlace{0, 1}), 1u);
  // Other entries untouched.
  EXPECT_DOUBLE_EQ(t.value(ExecutionPlace{1, 1}), 0.0);
}

TEST_F(PttTest, WeightedUpdateMatchesPaperFormula) {
  // Paper: updated = (4 * old + 1 * new) / 5 with the default 1:4 ratio.
  Ptt t(topo_);
  t.update(ExecutionPlace{0, 1}, 1.0);   // seeds to 1.0
  t.update(ExecutionPlace{0, 1}, 2.0);   // (4*1 + 2)/5 = 1.2
  EXPECT_NEAR(t.value(ExecutionPlace{0, 1}), 1.2, 1e-12);
  t.update(ExecutionPlace{0, 1}, 2.0);   // (4*1.2 + 2)/5 = 1.36
  EXPECT_NEAR(t.value(ExecutionPlace{0, 1}), 1.36, 1e-12);
}

TEST_F(PttTest, ThreeMeasurementsNeededToGetClose) {
  // The paper motivates 1:4 as needing >= 3 measurements to approach a new
  // level after a shift: from 1.0, three samples of 2.0 reach 1.488 — still
  // under halfway... verify monotone approach and the exact trajectory.
  Ptt t(topo_);
  const ExecutionPlace p{0, 1};
  t.update(p, 1.0);
  double prev = t.value(p);
  const double target = 2.0;
  for (int i = 0; i < 10; ++i) {
    t.update(p, target);
    const double v = t.value(p);
    EXPECT_GT(v, prev);
    EXPECT_LT(v, target);
    prev = v;
  }
  EXPECT_NEAR(prev, target, 0.25);  // (4/5)^10 remaining gap ~ 0.107
}

class PttRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(PttRatioTest, ConvergesForEveryRatio) {
  const int num = GetParam();
  const Topology topo = Topology::tx2();
  Ptt t(topo, UpdateRatio{num, 5});
  const ExecutionPlace p{2, 4};
  t.update(p, 10.0);
  for (int i = 0; i < 200; ++i) t.update(p, 3.0);
  if (num == 5) {
    EXPECT_DOUBLE_EQ(t.value(p), 3.0);  // last-sample-only
  } else {
    EXPECT_NEAR(t.value(p), 3.0, 1e-6);
  }
  EXPECT_EQ(t.samples(p), 201u);
}

TEST_P(PttRatioTest, GeometricDecayRate) {
  const int num = GetParam();
  const Topology topo = Topology::tx2();
  Ptt t(topo, UpdateRatio{num, 5});
  const ExecutionPlace p{0, 2};
  t.update(p, 1.0);
  t.update(p, 0.0);
  // After one update towards 0 the remaining fraction is (5-num)/5.
  EXPECT_NEAR(t.value(p), (5.0 - num) / 5.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ratios, PttRatioTest, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) {
                           return "new" + std::to_string(info.param) + "of5";
                         });

TEST_F(PttTest, RejectsInvalidRatio) {
  EXPECT_THROW(Ptt(topo_, UpdateRatio{0, 5}), PreconditionError);
  EXPECT_THROW(Ptt(topo_, UpdateRatio{6, 5}), PreconditionError);
  EXPECT_THROW(Ptt(topo_, UpdateRatio{1, 0}), PreconditionError);
}

TEST_F(PttTest, RejectsNegativeSample) {
  Ptt t(topo_);
  EXPECT_THROW(t.update(0, -1.0), PreconditionError);
}

TEST_F(PttTest, FillSeedsEverything) {
  Ptt t(topo_);
  t.fill(2.5);
  for (int pid = 0; pid < topo_.num_places(); ++pid) {
    EXPECT_DOUBLE_EQ(t.value(pid), 2.5);
    EXPECT_EQ(t.samples(pid), 1u);
  }
  t.fill(0.0);
  EXPECT_EQ(t.samples(0), 0u);
}

TEST_F(PttTest, EntriesAreIndependentAcrossPlaces) {
  Ptt t(topo_);
  for (int pid = 0; pid < topo_.num_places(); ++pid)
    t.update(pid, 1.0 + pid);
  for (int pid = 0; pid < topo_.num_places(); ++pid)
    EXPECT_DOUBLE_EQ(t.value(pid), 1.0 + pid);
}

TEST_F(PttTest, ConcurrentUpdatesLoseNothing) {
  Ptt t(topo_);
  const ExecutionPlace p{2, 2};
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, &p] {
      for (int j = 0; j < kIters; ++j) t.update(p, 1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.samples(p), static_cast<std::uint64_t>(kThreads) * kIters);
  // All samples equal 1.0, so the smoothed value must be exactly 1.0
  // regardless of interleaving.
  EXPECT_NEAR(t.value(p), 1.0, 1e-9);
}

TEST_F(PttTest, StoreCreatesOneTablePerType) {
  PttStore store(topo_, 3, UpdateRatio{2, 5});
  EXPECT_EQ(store.num_types(), 3);
  store.table(0).update(0, 1.0);
  EXPECT_DOUBLE_EQ(store.table(0).value(0), 1.0);
  EXPECT_DOUBLE_EQ(store.table(1).value(0), 0.0);
  EXPECT_EQ(store.table(2).ratio().num, 2);
  EXPECT_THROW(store.table(3), PreconditionError);
}

TEST_F(PttTest, LargeTopologyHasAllPlaces) {
  const Topology t80 = Topology::haswell_cluster(4);
  Ptt t(t80);
  // 8 sockets x 10 cores: per socket 10 w1 + 5 w2 + 2 w4 (offsets 0,4... wait
  // offsets 0 and 4 and 8: 8+4>10 so offsets 0,4 -> 2) + 1 w8 = 18 places.
  EXPECT_EQ(t80.num_places(), 8 * 18);
  t.update(t80.num_places() - 1, 1.0);
  EXPECT_DOUBLE_EQ(t.value(t80.num_places() - 1), 1.0);
}

}  // namespace
}  // namespace das
