// Tests for the Chase-Lev work-stealing deque: LIFO owner order, FIFO steal
// order, growth, and a linearisability-style stress test (every pushed item
// is popped or stolen exactly once).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "rt/wsq.hpp"

namespace das::rt {
namespace {

TEST(WsDeque, OwnerLifoOrder) {
  WsDeque<int> q;
  int items[3] = {1, 2, 3};
  q.push_bottom(&items[0]);
  q.push_bottom(&items[1]);
  q.push_bottom(&items[2]);
  EXPECT_EQ(q.size_estimate(), 3);
  EXPECT_EQ(q.pop_bottom(), &items[2]);
  EXPECT_EQ(q.pop_bottom(), &items[1]);
  EXPECT_EQ(q.pop_bottom(), &items[0]);
  EXPECT_EQ(q.pop_bottom(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(WsDeque, ThiefFifoOrder) {
  WsDeque<int> q;
  int items[3] = {1, 2, 3};
  for (auto& i : items) q.push_bottom(&i);
  EXPECT_EQ(q.steal_top(), &items[0]);
  EXPECT_EQ(q.steal_top(), &items[1]);
  EXPECT_EQ(q.steal_top(), &items[2]);
  EXPECT_EQ(q.steal_top(), nullptr);
}

TEST(WsDeque, OwnerAndThiefMeetInTheMiddle) {
  WsDeque<int> q;
  int items[4] = {0, 1, 2, 3};
  for (auto& i : items) q.push_bottom(&i);
  EXPECT_EQ(q.steal_top(), &items[0]);
  EXPECT_EQ(q.pop_bottom(), &items[3]);
  EXPECT_EQ(q.steal_top(), &items[1]);
  EXPECT_EQ(q.pop_bottom(), &items[2]);
  EXPECT_EQ(q.pop_bottom(), nullptr);
  EXPECT_EQ(q.steal_top(), nullptr);
}

TEST(WsDeque, GrowsBeyondInitialCapacity) {
  WsDeque<int> q(/*initial_capacity=*/4);
  std::vector<int> items(1000);
  for (auto& i : items) q.push_bottom(&i);
  EXPECT_EQ(q.size_estimate(), 1000);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(q.pop_bottom(), &items[static_cast<std::size_t>(i)]);
}

TEST(WsDeque, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(WsDeque<int>(3), PreconditionError);
  EXPECT_THROW(WsDeque<int>(1), PreconditionError);
}

TEST(WsDequeStress, EveryItemConsumedExactlyOnce) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 6;
  WsDeque<int> q(8);  // small start: forces growth under contention
  std::vector<int> items(kItems);
  for (int i = 0; i < kItems; ++i) items[static_cast<std::size_t>(i)] = i;

  std::atomic<bool> done{false};
  std::vector<std::vector<int*>> stolen(kThieves);
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* v = q.steal_top()) stolen[static_cast<std::size_t>(t)].push_back(v);
      }
      // Final drain so nothing is stranded.
      while (int* v = q.steal_top()) stolen[static_cast<std::size_t>(t)].push_back(v);
    });
  }

  std::vector<int*> popped;
  // Owner interleaves pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    q.push_bottom(&items[static_cast<std::size_t>(i)]);
    if ((i & 3) == 0) {
      if (int* v = q.pop_bottom()) popped.push_back(v);
    }
  }
  while (int* v = q.pop_bottom()) popped.push_back(v);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  std::set<int*> seen(popped.begin(), popped.end());
  std::size_t total = popped.size();
  for (const auto& sv : stolen) {
    total += sv.size();
    for (int* v : sv) {
      EXPECT_TRUE(seen.insert(v).second) << "item consumed twice";
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kItems));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kItems));
}

}  // namespace
}  // namespace das::rt
