// Tests for the EventCount parking primitive: the prepare/cancel/commit
// protocol, the no-lost-wakeup guarantee under racing arm/park (the Dekker
// duel documented in util/eventcount.hpp), and notify's cheap no-waiter
// fast path. The stress tests are the TSan coverage for the fences.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "util/eventcount.hpp"
#include "util/mpsc_queue.hpp"

namespace das {
namespace {

TEST(EventCountTest, NotifyWithoutWaitersIsANoop) {
  EventCount ec;
  for (int i = 0; i < 100; ++i) ec.notify();
  EXPECT_EQ(ec.waiters(), 0);
}

TEST(EventCountTest, CancelledWaitDoesNotSleep) {
  EventCount ec;
  const auto key = ec.prepare_wait();
  EXPECT_EQ(ec.waiters(), 1);
  ec.cancel_wait();
  EXPECT_EQ(ec.waiters(), 0);
  (void)key;
}

TEST(EventCountTest, NotifyBetweenPrepareAndCommitReturnsImmediately) {
  // A notify that lands after prepare_wait must make commit_wait a no-op
  // even though the waiter never reached the condition variable.
  EventCount ec;
  const auto key = ec.prepare_wait();
  ec.notify();
  ec.commit_wait(key);  // must not block
  EXPECT_EQ(ec.waiters(), 0);
}

TEST(EventCountTest, WakesASleepingWaiter) {
  EventCount ec;
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    for (;;) {
      const auto key = ec.prepare_wait();
      if (ready.load(std::memory_order_seq_cst)) {
        ec.cancel_wait();
        break;
      }
      ec.commit_wait(key);
    }
    woke.store(true, std::memory_order_seq_cst);
  });
  // Give the waiter a moment to actually park, then publish + notify in the
  // producer order the contract requires (predicate first).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ready.store(true, std::memory_order_seq_cst);
  ec.notify();
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(ec.waiters(), 0);
}

TEST(EventCountTest, NoLostWakeupsUnderRacingArmAndPark) {
  // The race the primitive exists to close: a producer makes the predicate
  // true and notifies while the consumer is between its predicate check and
  // its sleep. 10k items pushed through an MpscQueue with an aggressive
  // park-on-every-miss consumer; a lost wakeup hangs the test (gtest
  // timeout) rather than merely flaking.
  constexpr int kItems = 10000;
  struct Item {
    MpscQueue::Node hook;
    int value = 0;
  };
  MpscQueue q;
  EventCount ec;
  const auto items = std::make_unique<Item[]>(kItems);

  std::thread consumer([&] {
    int received = 0;
    while (received < kItems) {
      if (q.pop() != nullptr) {
        ++received;
        continue;
      }
      const auto key = ec.prepare_wait();
      if (!q.empty()) {  // re-check AFTER announcing the wait
        ec.cancel_wait();
        continue;
      }
      ec.commit_wait(key);
    }
  });

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      items[static_cast<std::size_t>(i)].value = i;
      q.push(&items[static_cast<std::size_t>(i)].hook,
             &items[static_cast<std::size_t>(i)]);
      ec.notify();  // after the push: the contract's producer order
    }
  });

  producer.join();
  consumer.join();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(ec.waiters(), 0);
}

TEST(EventCountTest, ManyRoundTripsPingPong) {
  // Two threads alternating producer/consumer roles over two eventcounts:
  // each round is a full park/notify handshake, so any ordering bug
  // deadlocks quickly. Also exercises epoch wrap-around behaviour over many
  // increments.
  constexpr int kRounds = 2000;
  EventCount ping, pong;
  std::atomic<int> turn{0};

  auto wait_for = [](EventCount& ec, std::atomic<int>& var, int want) {
    for (;;) {
      const auto key = ec.prepare_wait();
      if (var.load(std::memory_order_seq_cst) >= want) {
        ec.cancel_wait();
        return;
      }
      ec.commit_wait(key);
    }
  };

  std::thread other([&] {
    for (int r = 0; r < kRounds; ++r) {
      wait_for(ping, turn, 2 * r + 1);
      turn.fetch_add(1, std::memory_order_seq_cst);
      pong.notify();
    }
  });
  for (int r = 0; r < kRounds; ++r) {
    turn.fetch_add(1, std::memory_order_seq_cst);
    ping.notify();
    wait_for(pong, turn, 2 * r + 2);
  }
  other.join();
  EXPECT_EQ(turn.load(), 2 * kRounds);
}

}  // namespace
}  // namespace das
