// Fault-tolerance tests (the fail-stop tentpole): deterministic sim-engine
// fail-stop recovery with bitwise replay, freeze windows, the rt watchdog's
// planned fail-stops and wedge DETECTION, the executor facade running the
// same declarative fault spec on both backends, and the service layer's
// graceful-degradation surface (deadlines, bounded waits, retry budgets).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "platform/fault_plan.hpp"
#include "rt/runtime.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() : topo_(Topology::tx2()) {  // 6 cores, 2 clusters
    ids_ = kernels::register_paper_kernels(registry_);
  }

  Dag make_dag(int parallelism, int tasks, WorkFn work = {}) {
    workloads::SyntheticDagSpec spec;
    spec.type = ids_.matmul;
    spec.parallelism = parallelism;
    spec.total_tasks = tasks;
    spec.params.p0 = 16;
    spec.work = std::move(work);
    return workloads::make_synthetic_dag(spec);
  }

  // A quarter of tx2's cores = ceil(0.25 * 6) = 2 victims (cores 4, 5;
  // the resolve_faults guarantee keeps core 0 alive).
  scenario::ScenarioSpec quarter_kill_spec(double t_s) {
    scenario::ScenarioSpec spec;
    spec.name = "test-fail";
    spec.faults.push_back(scenario::FaultSpec{
        .kind = scenario::FaultSpec::Kind::kFail,
        .cores = {},
        .cluster = scenario::FaultSpec::kNoCluster,
        .fraction = 0.25,
        .t_s = t_s,
        .duration_s = 1.0,
        .slowdown = 0.2});
    return spec;
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

// --- sim engine: fail-stop recovery + bitwise replay ------------------------

TEST_F(FaultToleranceTest, SimMidRunFailStopRecoversAndReplaysBitwise) {
  const Dag dag = make_dag(4, 120);
  sim::SimOptions o;
  o.hash_traces = true;

  // Clean probe sizes the kill time so the fail-stop is guaranteed to land
  // while tasks are queued and in flight on the victims.
  double clean = 0.0;
  std::uint64_t clean_hash = 0;
  {
    sim::SimEngine eng(topo_, Policy::kDamC, registry_, o);
    clean = eng.run(dag);
    clean_hash = eng.trace_hash(0);
    EXPECT_EQ(eng.cores_failed(), 0);
    EXPECT_EQ(eng.tasks_reexecuted(), 0u);
  }

  FaultPlan plan;
  plan.events.push_back(
      CoreFault{CoreFault::Kind::kFail, /*core=*/4, clean * 0.5, kInf});
  plan.events.push_back(
      CoreFault{CoreFault::Kind::kFail, /*core=*/5, clean * 0.5, kInf});

  struct Run {
    double makespan;
    std::uint64_t hash, events, reexecuted;
    int failed;
  };
  const auto run_faulty = [&] {
    sim::SimEngine eng(topo_, Policy::kDamC, registry_, o,
                       /*scenario=*/nullptr, &plan);
    Run r;
    r.makespan = eng.run(dag);
    r.hash = eng.trace_hash(0);
    r.events = eng.events_processed();
    r.reexecuted = eng.tasks_reexecuted();
    r.failed = eng.cores_failed();
    return r;
  };

  const Run a = run_faulty();
  // Recovery: both victims died, at least one participation was reclaimed
  // and re-released, and the job still completed. (No makespan ordering is
  // asserted vs the clean run: on a heterogeneous topo, losing the victim
  // cores can legitimately SHORTEN the schedule.)
  EXPECT_EQ(a.failed, 2);
  EXPECT_GT(a.reexecuted, 0u);
  EXPECT_GT(a.makespan, 0.0);
  // The faulty trace is a different schedule, not a re-hashed clean one.
  EXPECT_NE(a.hash, clean_hash);

  // Bitwise replay: same (seed, fault plan, submission sequence) = same
  // event trace, including the re-executions.
  const Run b = run_faulty();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reexecuted, b.reexecuted);
  EXPECT_EQ(a.makespan, b.makespan);  // exact, not approximate
}

TEST_F(FaultToleranceTest, SimEmptyFaultPlanIsByteIdenticalToNoPlan) {
  // faults_enabled_ gating: an EMPTY plan must not perturb the event or RNG
  // streams relative to a fault-free engine (this is what keeps every
  // pre-fault golden table valid; sim_determinism_test pins the absolute
  // values).
  const Dag dag = make_dag(3, 60);
  sim::SimOptions o;
  o.hash_traces = true;
  sim::SimEngine bare(topo_, Policy::kDheft, registry_, o);
  const FaultPlan empty;
  sim::SimEngine gated(topo_, Policy::kDheft, registry_, o,
                       /*scenario=*/nullptr, &empty);
  EXPECT_EQ(bare.run(dag), gated.run(dag));
  EXPECT_EQ(bare.trace_hash(0), gated.trace_hash(0));
  EXPECT_EQ(bare.events_processed(), gated.events_processed());
}

TEST_F(FaultToleranceTest, SimFreezeWindowStallsWithoutLosingWork) {
  const Dag dag = make_dag(4, 120);
  double clean = 0.0;
  {
    sim::SimEngine eng(topo_, Policy::kDamC, registry_, sim::SimOptions{});
    clean = eng.run(dag);
  }
  // Freeze both fast-cluster victims for half the clean makespan, onset
  // mid-run: progress stalls but nothing is reclaimed.
  FaultPlan plan;
  plan.events.push_back(CoreFault{CoreFault::Kind::kFreeze, 4, clean * 0.4,
                                  clean * 0.9});
  plan.events.push_back(CoreFault{CoreFault::Kind::kFreeze, 5, clean * 0.4,
                                  clean * 0.9});
  sim::SimEngine eng(topo_, Policy::kDamC, registry_, sim::SimOptions{},
                     /*scenario=*/nullptr, &plan);
  const double frozen = eng.run(dag);
  EXPECT_GE(frozen, clean);
  EXPECT_EQ(eng.cores_failed(), 0);        // freeze is transient, not a death
  EXPECT_EQ(eng.tasks_reexecuted(), 0u);   // and loses no work
}

// --- executor facade: one declarative spec, both backends -------------------

TEST_F(FaultToleranceTest, QuarterKillMidRunCompletesEveryJobOnBothBackends) {
  // The acceptance scenario: a fail-stop killing 25% of the cores mid-run,
  // driven through the SAME declarative spec on both backends. Every job of
  // a 4-job stream must complete — no hang, no lost task.
  for (Backend backend : {Backend::kSim, Backend::kRt}) {
    SCOPED_TRACE(backend == Backend::kSim ? "sim" : "rt");
    // rt executes the work closure (real time); sim charges the matmul cost
    // model (virtual time). Same DAG serves both.
    const WorkFn work = backend == Backend::kRt
                            ? WorkFn([](const ExecContext&) { busy_wait_ns(300'000); })
                            : WorkFn{};
    std::vector<Dag> dags;
    for (int j = 0; j < 4; ++j) dags.push_back(make_dag(4, 60, work));

    // Clean probe: how long does one job take on this backend?
    double probe = 0.0;
    {
      auto exec = make_executor(backend, topo_, Policy::kDamC, registry_,
                                ExecutorConfig::builder().seed(2020).build());
      probe = exec->run(dags[0]).makespan_s;
    }

    // Kill a quarter of the cores halfway through the first job.
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_,
                              ExecutorConfig::builder()
                                  .seed(2020)
                                  .scenario_spec(quarter_kill_spec(probe * 0.5))
                                  .watchdog_period_s(2e-4)
                                  .build());
    std::vector<JobId> ids;
    for (const Dag& d : dags) ids.push_back(exec->submit(d));
    std::int64_t total_tasks = 0;
    for (JobId id : ids) {
      const RunResult r = exec->wait(id);
      EXPECT_TRUE(r.ok());
      total_tasks += r.tasks;
      EXPECT_GT(r.makespan_s, 0.0);
    }
    EXPECT_EQ(total_tasks, 4 * 60);
  }
}

// --- rt runtime: watchdog ---------------------------------------------------

TEST_F(FaultToleranceTest, RtWatchdogDetectsWedgedWorkerAndJobsComplete) {
  // A WEDGED worker goes silent without the courtesy of quarantining
  // itself: no heartbeat, no queue consumption. The watchdog must detect
  // the stale heartbeat, force-quarantine the worker, re-home its queued
  // tasks, and every job latch must still fire.
  rt::RtOptions o;
  o.pin_threads = false;
  o.enable_watchdog = true;
  o.watchdog_period_s = 2e-4;
  rt::Runtime runtime(topo_, Policy::kRws, registry_, o);

  const WorkFn spin = [](const ExecContext&) { busy_wait_ns(100'000); };
  const Dag warm = make_dag(3, 30, spin);
  runtime.run(warm);
  EXPECT_EQ(runtime.workers_failed(), 0);

  runtime.inject_worker_wedge(2);
  // Several jobs submitted AFTER the wedge: their tasks may still be routed
  // at worker 2 until the watchdog declares it dead, so completion proves
  // detection + re-homing, not luck.
  std::vector<Dag> dags;
  for (int j = 0; j < 3; ++j) dags.push_back(make_dag(4, 40, spin));
  std::vector<JobId> ids;
  for (const Dag& d : dags) ids.push_back(runtime.submit(d));
  for (JobId id : ids) EXPECT_GT(runtime.wait(id), 0.0);
  // Detection may lag completion (survivors can steal the wedged worker's
  // queue before the heartbeat grace expires), but it is guaranteed: the
  // worker never heartbeats again. Poll with a generous bound.
  for (int i = 0; i < 5000 && runtime.workers_failed() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(runtime.workers_failed(), 1);
}

TEST_F(FaultToleranceTest, RtPlannedFailStopQuarantinesAndJobsComplete) {
  // Planned (fault-plan) deaths take the cooperative path: the watchdog
  // arms the worker's fault flag, the worker retires at its next loop top,
  // and the watchdog re-homes whatever was queued on it.
  rt::RtOptions o;
  o.pin_threads = false;
  o.watchdog_period_s = 2e-4;
  o.faults.events.push_back(CoreFault{CoreFault::Kind::kFail, 4, 0.005, kInf});
  o.faults.events.push_back(CoreFault{CoreFault::Kind::kFail, 5, 0.005, kInf});
  rt::Runtime runtime(topo_, Policy::kRws, registry_, o);

  const WorkFn spin = [](const ExecContext&) { busy_wait_ns(200'000); };
  std::vector<Dag> dags;
  for (int j = 0; j < 4; ++j) dags.push_back(make_dag(4, 40, spin));
  std::vector<JobId> ids;
  for (const Dag& d : dags) ids.push_back(runtime.submit(d));
  for (JobId id : ids) EXPECT_GT(runtime.wait(id), 0.0);
  EXPECT_EQ(runtime.workers_failed(), 2);
}

// --- service layer: graceful degradation ------------------------------------

TEST_F(FaultToleranceTest, QueueingDeadlineTimesOutStuckJob) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                            ExecutorConfig::builder().seed(7).build());
  TenantConfig cfg;
  cfg.name = "deadline";
  cfg.max_in_flight = 1;
  auto session = exec->open_session(cfg);
  const Dag d1 = make_dag(2, 60);
  const Dag d2 = make_dag(2, 20);
  const JobId j1 = session->submit(d1);  // released (fills the slot)
  SubmitOptions opts;
  opts.deadline_s = 1e-9;  // expires long before j1's virtual completion
  const JobId j2 = session->submit(d2, opts);
  const RunResult r2 = exec->wait(j2);
  EXPECT_EQ(r2.outcome, RunResult::Outcome::kTimedOut);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.tasks, 0);
  const RunResult r1 = exec->wait(j1);
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(session->counters().timed_out, 1);
  EXPECT_EQ(session->counters().completed, 1);
}

TEST_F(FaultToleranceTest, RetryBudgetExhaustionIsReportedAsSuch) {
  auto exec = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                            ExecutorConfig::builder().seed(7).build());
  TenantConfig cfg;
  cfg.name = "retry";
  cfg.max_in_flight = 1;
  cfg.max_queued_tasks = 25;
  cfg.overload = Overload::kReject;
  cfg.max_retries = 2;
  cfg.retry_backoff_s = 1e-9;  // virtual: retries fire while j1 still runs
  auto session = exec->open_session(cfg);
  // pending_tasks is charged at admission and credited at RELEASE, so with
  // max_in_flight = 1: j1 admits (20 <= 25) and releases (pending back to
  // 0); j2 admits and stays pending (20); j3 would push pending to 40 > 25.
  const Dag d1 = make_dag(2, 20);
  const Dag d2 = make_dag(2, 20);
  const Dag d3 = make_dag(2, 20);
  const JobId j1 = session->submit(d1);  // released
  const JobId j2 = session->submit(d2);  // queued: fills the budget
  const JobId j3 = session->submit(d3);  // over budget -> retry loop
  const RunResult r3 = exec->wait(j3);
  EXPECT_EQ(r3.outcome, RunResult::Outcome::kRetriesExhausted);
  EXPECT_FALSE(r3.ok());
  EXPECT_TRUE(exec->wait(j1).ok());
  EXPECT_TRUE(exec->wait(j2).ok());
  const TenantCounters counters = session->counters();
  EXPECT_EQ(counters.retries, 2);
  EXPECT_EQ(counters.rejected, 1);
}

TEST_F(FaultToleranceTest, RetryBackoffEventuallyAdmits) {
  // With a real backoff budget the retry loop outlives the backlog: the
  // bounced job is admitted on a later attempt and completes normally.
  auto exec = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                            ExecutorConfig::builder().seed(7).build());
  TenantConfig cfg;
  cfg.name = "retry-ok";
  cfg.max_in_flight = 1;
  cfg.max_queued_tasks = 25;
  cfg.overload = Overload::kReject;
  cfg.max_retries = 40;
  cfg.retry_backoff_s = 1e-3;
  cfg.retry_backoff_cap_s = 0.05;
  auto session = exec->open_session(cfg);
  const Dag d1 = make_dag(2, 20);
  const Dag d2 = make_dag(2, 20);
  const Dag d3 = make_dag(2, 20);
  const JobId j1 = session->submit(d1);
  const JobId j2 = session->submit(d2);
  const JobId j3 = session->submit(d3);
  const RunResult r3 = exec->wait(j3);
  EXPECT_TRUE(r3.ok()) << "outcome " << static_cast<int>(r3.outcome);
  EXPECT_EQ(r3.tasks, 20);
  EXPECT_TRUE(exec->wait(j1).ok());
  EXPECT_TRUE(exec->wait(j2).ok());
  EXPECT_GT(session->counters().retries, 0);
  EXPECT_EQ(session->counters().rejected, 0);
}

TEST_F(FaultToleranceTest, WaitForTimesOutThenCompletes) {
  for (Backend backend : {Backend::kSim, Backend::kRt}) {
    SCOPED_TRACE(backend == Backend::kSim ? "sim" : "rt");
    const WorkFn work = backend == Backend::kRt
                            ? WorkFn([](const ExecContext&) { busy_wait_ns(500'000); })
                            : WorkFn{};
    auto exec = make_executor(backend, topo_, Policy::kDamC, registry_,
                              ExecutorConfig::builder().seed(11).build());
    const Dag dag = make_dag(4, 60, work);
    const JobId id = exec->submit(dag);
    // A bound far shorter than the job: times out, job stays waitable.
    std::optional<RunResult> first = exec->wait_for(id, 1e-7);
    EXPECT_FALSE(first.has_value());
    // A generous bound: the result arrives and is a normal completion.
    std::optional<RunResult> second = exec->wait_for(id, 60.0);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->ok());
    EXPECT_EQ(second->tasks, 60);
  }
}

TEST_F(FaultToleranceTest, FacadeReportsEngineRecoveryInRunResult) {
  // RunResult::tasks_reexecuted surfaces the engine counter through the
  // service layer (the bench uses it for recovery accounting).
  const Dag dag = make_dag(4, 120);
  double probe = 0.0;
  {
    auto exec = make_executor(Backend::kSim, topo_, Policy::kDamC, registry_,
                              ExecutorConfig::builder().seed(2020).build());
    probe = exec->run(dag).makespan_s;
  }
  auto exec = make_executor(
      Backend::kSim, topo_, Policy::kDamC, registry_,
      ExecutorConfig::builder()
          .seed(2020)
          .scenario_spec(quarter_kill_spec(probe * 0.5))
          .build());
  const RunResult r = exec->run(dag);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.tasks, 120);
  EXPECT_GT(r.tasks_reexecuted, 0);
}

}  // namespace
}  // namespace das
