// Tests for the Chrome trace-event timeline and its DES hook.

#include <gtest/gtest.h>

#include <sstream>

#include "kernels/registry.hpp"
#include "sim/engine.hpp"
#include "trace/timeline.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

TEST(Timeline, RecordsAndSerialises) {
  Timeline tl;
  tl.record(2, 0.001, 0.0005, "matmul", Priority::kHigh, 4);
  tl.record(0, 0.0, 0.002, "copy", Priority::kLow, 1);
  EXPECT_EQ(tl.size(), 2u);

  std::ostringstream os;
  tl.write_chrome_json(os);
  const std::string s = os.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"matmul\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(s.find("\"critical\":true"), std::string::npos);
  EXPECT_NE(s.find("\"width\":4"), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);

  tl.clear();
  EXPECT_EQ(tl.size(), 0u);
}

TEST(Timeline, RejectsInvalidIntervals) {
  Timeline tl;
  EXPECT_THROW(tl.record(-1, 0.0, 1.0, "x", Priority::kLow, 1), PreconditionError);
  EXPECT_THROW(tl.record(0, 0.0, -1.0, "x", Priority::kLow, 1), PreconditionError);
}

TEST(Timeline, DesRecordsOneIntervalPerParticipation) {
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::tx2();

  workloads::SyntheticDagSpec spec;
  spec.type = ids.matmul;
  spec.parallelism = 2;
  spec.total_tasks = 40;
  spec.params.p0 = 64;
  Dag dag = workloads::make_synthetic_dag(spec);

  Timeline tl;
  sim::SimOptions opts;
  opts.timeline = &tl;
  sim::SimEngine eng(topo, Policy::kDamC, registry, opts);
  eng.run(dag);

  // At least one interval per task (wider assemblies add more).
  EXPECT_GE(tl.size(), static_cast<std::size_t>(dag.num_nodes()));

  std::ostringstream os;
  tl.write_chrome_json(os);
  const std::string s = os.str();
  // All six TX2 cores and both priorities appear over a full run.
  EXPECT_NE(s.find("\"critical\":true"), std::string::npos);
  EXPECT_NE(s.find("\"critical\":false"), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"matmul\""), std::string::npos);
}

}  // namespace
}  // namespace das
