// Tests for the intrusive Vyukov MPSC queue: FIFO order, stub recycling
// around the empty state, node reuse after pop, and a multi-producer TSan
// stress asserting the FIFO-per-producer invariant under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"

namespace das {
namespace {

struct Payload {
  MpscQueue::Node hook;
  int producer = 0;
  int seq = 0;
};

TEST(MpscQueueTest, StartsEmpty) {
  MpscQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueueTest, SingleThreadFifo) {
  // Payload embeds an atomic hook, so it is neither copyable nor movable:
  // plain arrays, not vectors, hold the items (same shape as the rt
  // engine's TaskRec blocks).
  MpscQueue q;
  const auto items = std::make_unique<Payload[]>(100);
  for (int i = 0; i < 100; ++i) {
    items[static_cast<std::size_t>(i)].seq = i;
    q.push(&items[static_cast<std::size_t>(i)].hook,
           &items[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<Payload*>(q.pop());
    ASSERT_NE(p, nullptr) << "at " << i;
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueueTest, AlternatingPushPopRecyclesStub) {
  // Push/pop one item at a time: every pop drains the queue to its stub-only
  // state, exercising the internal stub re-enqueue path each round.
  MpscQueue q;
  Payload a;
  for (int round = 0; round < 1000; ++round) {
    a.seq = round;
    q.push(&a.hook, &a);
    EXPECT_FALSE(q.empty());
    auto* p = static_cast<Payload*>(q.pop());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->seq, round);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pop(), nullptr);
  }
}

TEST(MpscQueueTest, NodeReusableImmediatelyAfterPop) {
  // The ownership contract: once pop() returned a node's tag, the node may
  // be pushed into ANOTHER queue at once (the rt engine reuses ready_hook
  // across the feeder and inbox roles of successive wakes).
  MpscQueue q1, q2;
  Payload a, b;
  q1.push(&a.hook, &a);
  q1.push(&b.hook, &b);
  ASSERT_EQ(q1.pop(), &a);
  q2.push(&a.hook, &a);  // reuse in a second queue while q1 still holds b
  ASSERT_EQ(q2.pop(), &a);
  ASSERT_EQ(q1.pop(), &b);
  EXPECT_TRUE(q1.empty());
  EXPECT_TRUE(q2.empty());
}

TEST(MpscQueueTest, MultiProducerStressKeepsPerProducerFifo) {
  // N producers hammer one consumer. Global order is unspecified across
  // producers, but each producer's items must arrive in push order and
  // nothing may be lost or duplicated — the invariant the rt channels rely
  // on. Runs under TSan in CI.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscQueue q;
  std::vector<std::unique_ptr<Payload[]>> items;
  for (int p = 0; p < kProducers; ++p) {
    items.push_back(std::make_unique<Payload[]>(kPerProducer));
    for (int i = 0; i < kPerProducer; ++i) {
      auto& it = items[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
      it.producer = p;
      it.seq = i;
    }
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerProducer; ++i) {
        auto& it =
            items[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
        q.push(&it.hook, &it);
      }
    });
  }

  go.store(true, std::memory_order_release);
  int received = 0;
  std::vector<int> next_seq(kProducers, 0);
  while (received < kProducers * kPerProducer) {
    auto* it = static_cast<Payload*>(q.pop());
    if (it == nullptr) continue;  // empty or a producer mid-push: retry
    ASSERT_GE(it->producer, 0);
    ASSERT_LT(it->producer, kProducers);
    // FIFO per producer: each producer's items surface in push order.
    EXPECT_EQ(it->seq, next_seq[static_cast<std::size_t>(it->producer)])
        << "producer " << it->producer;
    next_seq[static_cast<std::size_t>(it->producer)] = it->seq + 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  for (int p = 0; p < kProducers; ++p)
    EXPECT_EQ(next_seq[static_cast<std::size_t>(p)], kPerProducer);
}

}  // namespace
}  // namespace das
