// Tests for the two-level (cluster-cached) PTT search: agreement with the
// flat brute-force arg-min, correct cache invalidation, and the rescan
// savings the design exists for.

#include <gtest/gtest.h>

#include <limits>

#include "core/two_level_search.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace das {
namespace {

ExecutionPlace brute_min(const Topology& topo, const Ptt& ptt,
                         PolicyEngine::Objective obj) {
  double best = std::numeric_limits<double>::infinity();
  ExecutionPlace arg{0, 1};
  for (int pid = 0; pid < topo.num_places(); ++pid) {
    const ExecutionPlace& p = topo.place_at(pid);
    const double v = ptt.value(pid);
    const double key =
        obj == PolicyEngine::Objective::kCost ? v * p.width : v;
    if (key < best) {
      best = key;
      arg = p;
    }
  }
  return arg;
}

class TwoLevelTest : public ::testing::TestWithParam<PolicyEngine::Objective> {
 protected:
  TwoLevelTest() : topo_(Topology::haswell_cluster(2)), ptt_(topo_) {}
  Topology topo_;
  Ptt ptt_;
};

TEST_P(TwoLevelTest, MatchesBruteForceThroughRandomUpdates) {
  TwoLevelSearch search(topo_);
  Xoshiro256 rng(13);
  for (int step = 0; step < 500; ++step) {
    const int pid = static_cast<int>(rng.below(static_cast<std::uint64_t>(topo_.num_places())));
    const ExecutionPlace p = topo_.place_at(pid);
    ptt_.update(pid, 1e-4 * (1.0 + rng.uniform() * 10.0));
    search.invalidate(p);
    const ExecutionPlace got = search.find_min(ptt_, GetParam());
    const ExecutionPlace want = brute_min(topo_, ptt_, GetParam());
    // Keys must match (multiple places may share the same key).
    const double got_v = ptt_.value(got);
    const double want_v = ptt_.value(want);
    if (GetParam() == PolicyEngine::Objective::kCost) {
      ASSERT_DOUBLE_EQ(got_v * got.width, want_v * want.width) << "step " << step;
    } else {
      ASSERT_DOUBLE_EQ(got_v, want_v) << "step " << step;
    }
  }
}

TEST_P(TwoLevelTest, StaleWithoutInvalidation) {
  TwoLevelSearch search(topo_);
  ptt_.fill(1.0);
  search.invalidate_all();
  const ExecutionPlace before = search.find_min(ptt_, GetParam());
  // Make some place clearly better but DON'T invalidate: the cache must
  // (by design) keep the stale answer...
  const ExecutionPlace improved{20, 1};
  for (int i = 0; i < 64; ++i) ptt_.update(improved, 1e-6);
  const ExecutionPlace stale = search.find_min(ptt_, GetParam());
  EXPECT_EQ(stale, before);
  // ...until notified.
  search.invalidate(improved);
  EXPECT_EQ(search.find_min(ptt_, GetParam()), improved);
}

TEST_P(TwoLevelTest, RescansOnlyDirtyClusters) {
  TwoLevelSearch search(topo_);
  ptt_.fill(1.0);
  search.invalidate_all();
  search.find_min(ptt_, GetParam());
  const std::uint64_t after_full = search.rescans();
  EXPECT_EQ(after_full, static_cast<std::uint64_t>(topo_.num_clusters()));

  // A localised update dirties exactly one cluster.
  ptt_.update(ExecutionPlace{0, 2}, 0.5);
  search.invalidate(ExecutionPlace{0, 2});
  search.find_min(ptt_, GetParam());
  EXPECT_EQ(search.rescans(), after_full + 1);

  // A clean search rescans nothing.
  search.find_min(ptt_, GetParam());
  EXPECT_EQ(search.rescans(), after_full + 1);
}

INSTANTIATE_TEST_SUITE_P(Objectives, TwoLevelTest,
                         ::testing::Values(PolicyEngine::Objective::kCost,
                                           PolicyEngine::Objective::kTime),
                         [](const auto& info) {
                           return info.param == PolicyEngine::Objective::kCost
                                      ? "Cost"
                                      : "Time";
                         });

TEST(TwoLevelSearchBasics, UnexploredEntriesWinLikeTheFlatSearch) {
  const Topology topo = Topology::tx2();
  Ptt ptt(topo);
  TwoLevelSearch search(topo);
  // Everything explored except (2,4): the zero entry must win.
  for (int pid = 0; pid < topo.num_places(); ++pid)
    if (topo.place_at(pid) != ExecutionPlace{2, 4}) ptt.update(pid, 1.0);
  search.invalidate_all();
  EXPECT_EQ(search.find_min(ptt, PolicyEngine::Objective::kTime),
            (ExecutionPlace{2, 4}));
}

TEST(TwoLevelSearchBasics, InvalidPlaceRejected) {
  const Topology topo = Topology::tx2();
  TwoLevelSearch search(topo);
  EXPECT_THROW(search.invalidate(ExecutionPlace{3, 2}), PreconditionError);
}

}  // namespace
}  // namespace das
