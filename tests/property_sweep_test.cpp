// Property sweeps across the full (policy x kernel x parallelism) grid on
// the deterministic engine: conservation, place validity, priority
// accounting, and reproducibility hold for EVERY configuration the paper's
// figures touch, not just the ones the targeted tests exercise.

#include <gtest/gtest.h>

#include <tuple>

#include "kernels/registry.hpp"
#include "sim/engine.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das {
namespace {

enum class Kernel { kMatMul, kCopy, kStencil };

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kMatMul: return "MatMul";
    case Kernel::kCopy: return "Copy";
    case Kernel::kStencil: return "Stencil";
  }
  return "?";
}

using Config = std::tuple<Policy, Kernel, int>;

class SweepTest : public ::testing::TestWithParam<Config> {
 protected:
  SweepTest() : topo_(Topology::tx2()) {
    ids_ = kernels::register_paper_kernels(registry_);
  }

  workloads::SyntheticDagSpec spec_for(Kernel k, int parallelism) const {
    switch (k) {
      case Kernel::kMatMul:
        return workloads::paper_matmul_spec(ids_.matmul, parallelism, 0.01);
      case Kernel::kCopy:
        return workloads::paper_copy_spec(ids_.copy, parallelism, 0.03);
      case Kernel::kStencil:
        return workloads::paper_stencil_spec(ids_.stencil, parallelism, 0.02);
    }
    return {};
  }

  Topology topo_;
  TaskTypeRegistry registry_;
  kernels::PaperKernelIds ids_;
};

TEST_P(SweepTest, ConservationValidityAndDeterminism) {
  const auto [policy, kernel, parallelism] = GetParam();
  const workloads::SyntheticDagSpec spec = spec_for(kernel, parallelism);

  SpeedScenario scenario(topo_);
  scenario.add_cpu_corunner(0);

  auto run_once = [&](std::int64_t* high_tasks) {
    Dag dag = workloads::make_synthetic_dag(spec);
    sim::SimOptions opts;
    opts.seed = 31;
    sim::SimEngine eng(topo_, policy, registry_, opts, &scenario);
    const double makespan = eng.run(dag);

    // Conservation: every task executed exactly once.
    EXPECT_EQ(eng.stats().tasks_total(), dag.num_nodes());
    // Priority accounting: one critical per layer.
    const std::int64_t high = eng.stats().tasks_with_priority(Priority::kHigh);
    EXPECT_EQ(high, dag.num_nodes() / parallelism);
    if (high_tasks != nullptr) *high_tasks = high;
    // Every recorded place is valid and every core stayed within time.
    for (int pid = 0; pid < topo_.num_places(); ++pid) {
      if (eng.stats().tasks_at(Priority::kLow, pid) +
              eng.stats().tasks_at(Priority::kHigh, pid) >
          0) {
        EXPECT_TRUE(topo_.is_valid_place(topo_.place_at(pid)));
      }
    }
    for (int c = 0; c < topo_.num_cores(); ++c)
      EXPECT_LE(eng.stats().busy_s(c), makespan * 1.0001);
    return makespan;
  };

  std::int64_t high1 = 0, high2 = 0;
  const double m1 = run_once(&high1);
  const double m2 = run_once(&high2);
  EXPECT_DOUBLE_EQ(m1, m2) << "same seed must reproduce the makespan";
  EXPECT_EQ(high1, high2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SweepTest,
    ::testing::Combine(::testing::Values(Policy::kRws, Policy::kRwsmC,
                                         Policy::kFa, Policy::kFamC,
                                         Policy::kDa, Policy::kDamC,
                                         Policy::kDamP, Policy::kDheft),
                       ::testing::Values(Kernel::kMatMul, Kernel::kCopy,
                                         Kernel::kStencil),
                       ::testing::Values(2, 4, 6)),
    [](const auto& info) {
      // NOTE: no structured bindings here — the unparenthesised commas in
      // `auto [a, b, c]` would split the INSTANTIATE macro's arguments.
      std::string n = std::string(policy_name(std::get<0>(info.param))) + "_" +
                      kernel_name(std::get<1>(info.param)) + "_P" +
                      std::to_string(std::get<2>(info.param));
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace das
